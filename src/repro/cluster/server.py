"""Process-sharded frame serving: one engine per worker process.

:class:`ClusterServer` is the multi-core counterpart of
:class:`repro.serving.FrameServer`.  The thread server keeps one engine busy
from many threads, but every Python-level stage of the extractor shares the
producer's GIL, so serving saturates near one host core.  The cluster
spawns ``num_workers`` worker *processes*, each owning a full
engine/backend pair (any registered pair: ``reference``, ``vectorized``,
``hwexact``), and moves pixels through a shared-memory ring
(:mod:`repro.cluster.shared_ring`) so no frame is ever pickled.

Semantics mirror the thread server deliberately:

* **back-pressure** — at most ``max_in_flight`` frames are in flight; a
  submit beyond that blocks the producer on a condition variable (woken
  the instant a completion frees the window) instead of queueing unbounded
  pixels — or, with ``on_overload`` set to ``"fail_fast"`` /
  ``"degrade_to_local"``, sheds the submission instead of blocking;
* **in-order results** — :meth:`ClusterServer.extract_many` returns results
  in submission order regardless of worker completion order;
* **identical output** — every worker builds its engine from the same
  :class:`~repro.config.ExtractorConfig`, extraction is a pure per-frame
  function, and both transports are byte-exact, so results are
  bit-identical to sequential extraction (``tests/test_cluster.py``,
  ``tests/test_chaos.py``) no matter which worker ends up running a frame
  — including frames that were stolen, requeued after a crash, or served
  by the in-process degrade fallback;
* **clean lifecycle** — context manager, graceful drain on idempotent
  close, and crashed-worker handling: **unsupervised** (default), a dead
  worker fails its submissions with a :class:`~repro.errors.ReproError`
  and the cluster serves on survivors; **supervised** (pass a
  :class:`~repro.cluster.supervisor.SupervisorConfig`), a dead worker is
  respawned under capped exponential backoff and its jobs are *requeued*
  through the router instead of failed, bounded by ``max_retries`` and the
  per-job ``deadline_s`` — past either budget the job fails with a
  structured :class:`~repro.errors.JobFailed` carrying its attempt
  history.

Placement is delegated to a :class:`~repro.cluster.router.ShardPolicy`
(``round_robin``, ``by_sequence`` or the load-aware ``least_loaded``,
which reads a live per-worker :class:`~repro.cluster.router.WorkerLoad`
view — queue depth + EWMA latency — snapshotted from :class:`ClusterStats`
at routing time).  A **dispatcher thread** hands each worker at most
:data:`DISPATCH_DEPTH` jobs at a time and keeps the rest in per-worker
backlogs; with ``work_stealing=True`` an idle worker drains a saturated
worker's backlog.  Stealing and crash requeueing move *where* a job runs,
never *what* it computes: the job's future, cache key and pixels are
untouched, so results stay bit-identical and in submission order.

Frame transport is chosen per frame: when the configuration selects the
``shared`` pyramid provider, the producer publishes the frame's whole
pyramid (level 0 included) into a
:class:`~repro.pyramid.SharedPyramidCache`, pins the slot, and hands the
worker only the job id — the **zero-copy fast path**; the ring write is
skipped entirely and only happens as a fallback when the publish fails
(cache full).  A requeued zero-copy job needs no republish: the producer
pin outlives the crash, so the replacement worker attaches the same slot,
and the dead consumer's leaked lease is voided by a forced retire when the
job finally completes (``docs/pyramid.md``).  Per-worker and aggregate
counters — including restarts, retries, requeues, sheds, pool changes and
the ``leaked_slots`` audit — live in :class:`ClusterStats`.

Failure semantics (supervision, elasticity, shedding, deadline rules) are
documented in ``docs/serving.md``.
"""

from __future__ import annotations

import os
import queue as queue_module
import signal
import threading
import time
from collections import deque
from multiprocessing.connection import wait as mp_connection_wait
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..config import ExtractorConfig
from ..errors import JobAttempt, JobFailed, ReproError
from ..features import ExtractionResult
from ..image import GrayImage
from ..pyramid import SharedPyramidCache
from ..serving.frame_server import (
    LATENCY_WINDOW,
    local_extraction_config,
)
from ..serving.resultpack import max_packed_nbytes, unpack_result
from ..telemetry import (
    ActivityWindow,
    EventJournal,
    MetricsRegistry,
    Trace,
    Tracer,
)
from .context import get_mp_context
from .result_ring import RingSlotRef, SharedResultRing
from .router import ShardPolicy, WorkerLoad, create_policy, route_to_alive
from .shared_ring import SharedFrameRing
from .supervisor import (
    WORKER_DEAD,
    WORKER_FAILED,
    WORKER_RETIRED,
    WORKER_RETIRING,
    WORKER_RUNNING,
    ElasticityConfig,
    Supervisor,
    SupervisorConfig,
)
from .worker import DEFAULT_RESULT_BATCH, SHUTDOWN, worker_main

#: How often the collector wakes to check worker health (seconds).
_HEALTH_POLL_S = 0.05

#: Jobs handed to one worker's queue at a time.  Everything beyond this
#: stays in the server-side backlog where the dispatcher can still steal
#: it for an idle worker — and where a supervised requeue can still move
#: it after a crash; small enough that stealing has material work to
#: move, large enough that a worker is never starved between refills.
DISPATCH_DEPTH = 2

#: Weight of the newest sample in the per-worker EWMA latency feeding the
#: ``least_loaded`` load view.
_EWMA_ALPHA = 0.2

#: Safety net on ring acquisition.  Admission control guarantees a free
#: slot exists whenever the ring is used (in-flight frames never exceed the
#: slot count), so hitting this timeout indicates a leaked slot, not
#: back-pressure; it is counted in ``ClusterStats.leaked_slots``.
_RING_ACQUIRE_TIMEOUT_S = 5.0


def _safe_metric_read(fn):
    """Wrap a callback-gauge reader so a snapshot taken mid-close (shared
    memory already unlinked) reports 0 instead of raising."""

    def read() -> float:
        try:
            return float(fn())
        except Exception:
            return 0.0

    return read


class WorkerStats:
    """Counters of one worker process, maintained by the parent.

    A view over the cluster's :class:`~repro.telemetry.MetricsRegistry`:
    the numeric attributes are read/write properties backed by
    ``cluster_worker_*{worker="<id>"}`` metrics, so the existing
    ``worker.frames_completed += 1`` call sites keep working while every
    counter is scrape-able through the registry.  Latency percentiles read
    a bounded log-bucket histogram (O(buckets), no deque sort);
    ``latencies_s`` keeps the raw recent-sample window for callers that
    consume samples directly.

    ``state`` tracks the worker lifecycle (``running`` / ``dead`` /
    ``failed`` / ``retiring`` / ``retired`` — see
    :mod:`repro.cluster.supervisor`); ``alive`` stays the routing-facing
    boolean and is true exactly while ``state == "running"``.
    ``restarts`` counts supervised respawns of this worker slot.
    """

    def __init__(
        self,
        worker_id: int,
        registry: Optional[MetricsRegistry] = None,
        alive: bool = True,
        state: str = WORKER_RUNNING,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.worker_id = worker_id
        self.alive = alive
        self.state = state
        # bounded recent-latency window (serving.frame_server.LATENCY_WINDOW)
        self.latencies_s: "deque[float]" = deque(maxlen=LATENCY_WINDOW)
        labels = {"worker": str(worker_id)}
        self._completed_counter = self.registry.counter(
            "cluster_worker_frames_completed_total",
            help="frames completed by this worker",
            labels=labels,
        )
        self._failed_counter = self.registry.counter(
            "cluster_worker_frames_failed_total",
            help="frames failed on this worker",
            labels=labels,
        )
        self._queue_depth_gauge = self.registry.gauge(
            "cluster_worker_queue_depth",
            help="frames owned by this worker (backlog + dispatched)",
            labels=labels,
        )
        self._steals_counter = self.registry.counter(
            "cluster_worker_steals_total",
            help="jobs this worker stole from a saturated victim's backlog",
            labels=labels,
        )
        self._restarts_counter = self.registry.counter(
            "cluster_worker_restarts_total",
            help="supervised respawns of this worker slot",
            labels=labels,
        )
        self._ewma_gauge = self.registry.gauge(
            "cluster_worker_ewma_latency_s",
            help="EWMA of this worker's per-frame latency (seconds)",
            labels=labels,
        )
        self._latency_histogram = self.registry.histogram(
            "cluster_worker_latency_s",
            help="per-frame latency of this worker (seconds)",
            labels=labels,
        )

    # -- registry-backed read/write attributes ------------------------------
    # Counter setters apply the delta against the live value; every write
    # happens under ClusterStats._lock, so read-modify-write is serialized.
    @property
    def frames_completed(self) -> int:
        return self._completed_counter.value

    @frames_completed.setter
    def frames_completed(self, value: int) -> None:
        self._completed_counter.add(value - self._completed_counter.value)

    @property
    def frames_failed(self) -> int:
        return self._failed_counter.value

    @frames_failed.setter
    def frames_failed(self, value: int) -> None:
        self._failed_counter.add(value - self._failed_counter.value)

    @property
    def queue_depth(self) -> int:
        return self._queue_depth_gauge.value

    @queue_depth.setter
    def queue_depth(self, value: int) -> None:
        self._queue_depth_gauge.set(value)

    @property
    def steals(self) -> int:
        return self._steals_counter.value

    @steals.setter
    def steals(self, value: int) -> None:
        self._steals_counter.add(value - self._steals_counter.value)

    @property
    def restarts(self) -> int:
        return self._restarts_counter.value

    @restarts.setter
    def restarts(self, value: int) -> None:
        self._restarts_counter.add(value - self._restarts_counter.value)

    @property
    def ewma_latency_s(self) -> float:
        return self._ewma_gauge.value

    @ewma_latency_s.setter
    def ewma_latency_s(self, value: float) -> None:
        self._ewma_gauge.set(value)

    def _observe_latency(self, latency_s: float) -> None:
        self.latencies_s.append(latency_s)
        self._latency_histogram.observe(latency_s)

    @property
    def latency_p50_ms(self) -> float:
        return 1000.0 * self._latency_histogram.percentile(50.0)

    @property
    def latency_p95_ms(self) -> float:
        return 1000.0 * self._latency_histogram.percentile(95.0)

    def as_dict(self) -> Dict[str, object]:
        return {
            "worker_id": self.worker_id,
            "frames_completed": self.frames_completed,
            "frames_failed": self.frames_failed,
            "queue_depth": self.queue_depth,
            "steals": self.steals,
            "restarts": self.restarts,
            "ewma_latency_ms": 1000.0 * self.ewma_latency_s,
            "alive": self.alive,
            "state": self.state,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
        }


class ClusterStats:
    """Aggregate + per-worker counters of a :class:`ClusterServer`.

    A view over one :class:`~repro.telemetry.MetricsRegistry` (``cluster_*``
    metrics — naming scheme in ``docs/observability.md``): the aggregate
    counters are read-only properties over registry counters/gauges, the
    latency percentiles read a bounded log-bucket histogram, and an
    :class:`~repro.telemetry.ActivityWindow` adds ``active_elapsed_s`` /
    ``active_throughput_fps`` (throughput over the time the cluster was
    actually serving, immune to idle gaps between replays).  All
    pre-telemetry ``as_dict()`` keys are preserved.

    Field names match :class:`repro.serving.ServingStats` where the concept
    matches, so thread-server and cluster reports line up column for column.
    On top of those, the routing/transport counters make the fast paths
    observable: ``steals`` (jobs moved off a saturated worker's backlog),
    ``frames_zero_copy`` / ``frames_via_ring`` (which transport carried
    each frame), ``ring_bytes_copied`` (producer-side memcpy volume; zero
    for zero-copy frames) and ``publish_fallbacks`` (shared-pyramid
    publishes that failed and fell back to the ring).  The return path has
    its own trio: ``results_zero_copy`` (results collected as packed
    arrays from the shared result ring), ``results_via_pickle`` (results
    that rode the queue — no ring configured, range exhausted, or
    oversized) and ``result_bytes_saved`` (packed bytes that skipped the
    pickle pipe entirely).

    The robustness counters make failure handling observable:
    ``restarts`` (supervised worker respawns), ``requeued`` (jobs moved
    off a dead worker instead of failed), ``retries`` (requeued jobs that
    had already been dispatched — i.e. actual re-executions), ``shed``
    (submissions refused or served by the in-process degrade fallback
    under overload), ``pool_grows`` / ``pool_shrinks`` (elastic membership
    changes) and ``leaked_slots`` (transport slots that had to be
    force-reclaimed — zero in a healthy run, asserted by the chaos tests).
    """

    #: aggregate counter attributes -> registry metric names; each becomes a
    #: read-only property (via ``__getattr__``) and a row in the docs table
    _COUNTERS = {
        "frames_submitted": "cluster_frames_submitted_total",
        "frames_completed": "cluster_frames_completed_total",
        "frames_failed": "cluster_frames_failed_total",
        "steals": "cluster_steals_total",
        "publish_fallbacks": "cluster_publish_fallbacks_total",
        "frames_zero_copy": "cluster_frames_zero_copy_total",
        "frames_via_ring": "cluster_frames_via_ring_total",
        "ring_bytes_copied": "cluster_ring_bytes_copied_total",
        "results_zero_copy": "cluster_results_zero_copy_total",
        "results_via_pickle": "cluster_results_via_pickle_total",
        "result_bytes_saved": "cluster_result_bytes_saved_total",
        "restarts": "cluster_restarts_total",
        "retries": "cluster_retries_total",
        "requeued": "cluster_requeued_total",
        "shed": "cluster_shed_total",
        "pool_grows": "cluster_pool_grows_total",
        "pool_shrinks": "cluster_pool_shrinks_total",
        "leaked_slots": "cluster_leaked_slots_total",
    }

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        _clock=None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.workers: List[WorkerStats] = []
        self._clock = _clock if _clock is not None else time.perf_counter
        self._counters = {
            attr: self.registry.counter(name, help=attr.replace("_", " "))
            for attr, name in self._COUNTERS.items()
        }
        self._in_flight_gauge = self.registry.gauge(
            "cluster_in_flight", help="frames submitted but not yet completed"
        )
        self._max_in_flight_gauge = self.registry.gauge(
            "cluster_max_in_flight", help="high-watermark of the in-flight window"
        )
        self._latency_histogram = self.registry.histogram(
            "cluster_latency_s", help="per-frame serving latency (seconds)"
        )
        self._active_gauge = self.registry.gauge(
            "cluster_active_s",
            help="accumulated active serving time (idle gaps capped)",
        )
        self._window = ActivityWindow(clock=self._clock)
        self._first_submit_s: Optional[float] = None
        self._last_completed_s: Optional[float] = None
        self._lock = threading.Lock()

    def __getattr__(self, attr: str):
        # Aggregate counters read straight from the registry.  __getattr__
        # only fires for names with no real attribute/property, so the
        # bookkeeping hot paths below never pay for this indirection.
        counters = self.__dict__.get("_counters")
        if counters is not None and attr in counters:
            return counters[attr].value
        raise AttributeError(attr)

    # -- bookkeeping (server-internal) ------------------------------------
    def _touch_window(self) -> None:
        """Advance the activity window (caller holds ``self._lock``)."""
        self._window.touch()
        self._active_gauge.set(self._window.active_s)

    def _submitted(self, worker_id: int) -> None:
        with self._lock:
            if self._first_submit_s is None:
                self._first_submit_s = self._clock()
            self._counters["frames_submitted"].inc()
            self._in_flight_gauge.inc()
            self._max_in_flight_gauge.set_max(self._in_flight_gauge.value)
            self.workers[worker_id].queue_depth += 1
            self._touch_window()

    def _completed(self, worker_id: int, latency_s: float) -> None:
        with self._lock:
            self._last_completed_s = self._clock()
            self._counters["frames_completed"].inc()
            self._in_flight_gauge.dec()
            self._latency_histogram.observe(latency_s)
            worker = self.workers[worker_id]
            worker.frames_completed += 1
            worker.queue_depth -= 1
            worker._observe_latency(latency_s)
            if worker.frames_completed == 1:
                worker.ewma_latency_s = latency_s
            else:
                worker.ewma_latency_s = (
                    (1.0 - _EWMA_ALPHA) * worker.ewma_latency_s
                    + _EWMA_ALPHA * latency_s
                )
            self._touch_window()

    def _failed(self, worker_id: int) -> None:
        with self._lock:
            self._last_completed_s = self._clock()
            self._counters["frames_failed"].inc()
            self._in_flight_gauge.dec()
            worker = self.workers[worker_id]
            worker.frames_failed += 1
            worker.queue_depth -= 1
            self._touch_window()

    def _abandoned(self, worker_id: int) -> None:
        """Undo a submission whose hand-off failed (never extracted)."""
        with self._lock:
            self._counters["frames_submitted"].add(-1)
            self._in_flight_gauge.dec()
            self.workers[worker_id].queue_depth -= 1

    def _stolen(self, victim_id: int, thief_id: int) -> None:
        """Move one queued job's accounting from ``victim`` to ``thief``."""
        with self._lock:
            self._counters["steals"].inc()
            self.workers[thief_id].steals += 1
            self.workers[victim_id].queue_depth -= 1
            self.workers[thief_id].queue_depth += 1

    def _transport(self, zero_copy: bool, bytes_copied: int, fallback: bool) -> None:
        """Record which transport carried one frame and its copy volume."""
        with self._lock:
            if zero_copy:
                self._counters["frames_zero_copy"].inc()
            else:
                self._counters["frames_via_ring"].inc()
                self._counters["ring_bytes_copied"].inc(bytes_copied)
            if fallback:
                self._counters["publish_fallbacks"].inc()

    def _result_transport(self, zero_copy: bool, packed_nbytes: int) -> None:
        """Record which transport carried one collected result."""
        with self._lock:
            if zero_copy:
                self._counters["results_zero_copy"].inc()
                self._counters["result_bytes_saved"].inc(packed_nbytes)
            else:
                self._counters["results_via_pickle"].inc()

    def _requeued(self, victim_id: int, target_id: int, retried: bool) -> None:
        """Move one crashed-worker job's accounting to its new owner."""
        with self._lock:
            self._counters["requeued"].inc()
            if retried:
                self._counters["retries"].inc()
            if victim_id != target_id:
                self.workers[victim_id].queue_depth -= 1
                self.workers[target_id].queue_depth += 1

    def _restarted(self, worker_id: int) -> None:
        with self._lock:
            self._counters["restarts"].inc()
            self.workers[worker_id].restarts += 1

    def _shed(self) -> None:
        with self._lock:
            self._counters["shed"].inc()

    def _pool_grew(self) -> None:
        with self._lock:
            self._counters["pool_grows"].inc()

    def _pool_shrank(self) -> None:
        with self._lock:
            self._counters["pool_shrinks"].inc()

    def _leaked(self, count: int) -> None:
        with self._lock:
            self._counters["leaked_slots"].inc(count)

    def _add_worker(
        self, alive: bool = False, state: str = WORKER_RETIRED
    ) -> WorkerStats:
        """Append stats for one worker slot (elastic growth starts not alive)."""
        with self._lock:
            worker = WorkerStats(
                worker_id=len(self.workers),
                registry=self.registry,
                alive=alive,
                state=state,
            )
            self.workers.append(worker)
            return worker

    # -- derived metrics ---------------------------------------------------
    @property
    def _in_flight(self) -> int:
        return self._in_flight_gauge.value

    @property
    def max_in_flight(self) -> int:
        return self._max_in_flight_gauge.value

    @property
    def queue_depth(self) -> int:
        """Frames submitted but not yet completed/failed, across all workers."""
        return self._in_flight

    @property
    def latency_p50_ms(self) -> float:
        """Median serving latency (ms), read from the bounded histogram."""
        return 1000.0 * self._latency_histogram.percentile(50.0)

    @property
    def latency_p95_ms(self) -> float:
        return 1000.0 * self._latency_histogram.percentile(95.0)

    @property
    def elapsed_s(self) -> float:
        """Wall-clock span from first submit to last completion."""
        if self._first_submit_s is None or self._last_completed_s is None:
            return 0.0
        return max(0.0, self._last_completed_s - self._first_submit_s)

    @property
    def throughput_fps(self) -> float:
        """Completed frames per wall-clock second across the whole cluster."""
        elapsed = self.elapsed_s
        if elapsed <= 0.0:
            return 0.0
        return self.frames_completed / elapsed

    @property
    def active_elapsed_s(self) -> float:
        """Accumulated *active* serving time (idle gaps capped)."""
        with self._lock:
            return self._window.active_s

    @property
    def active_throughput_fps(self) -> float:
        """Completed frames per second of *active* time — unlike the legacy
        ``throughput_fps``, this does not deflate across idle gaps between
        replays on a long-lived server."""
        active = self.active_elapsed_s
        if active <= 0.0:
            return 0.0
        return self.frames_completed / active

    def load_view(self) -> List[WorkerLoad]:
        """Per-worker load snapshot fed to load-aware shard policies."""
        with self._lock:
            return [
                WorkerLoad(
                    worker_id=worker.worker_id,
                    queue_depth=worker.queue_depth,
                    ewma_latency_s=worker.ewma_latency_s,
                    alive=worker.alive,
                )
                for worker in self.workers
            ]

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot (benchmark reports).

        Every pre-telemetry key is preserved; ``active_elapsed_s`` /
        ``active_throughput_fps`` are additive.
        """
        with self._lock:  # per-worker rows snapshot under the append lock
            workers = [worker.as_dict() for worker in self.workers]
        return {
            "frames_submitted": self.frames_submitted,
            "frames_completed": self.frames_completed,
            "frames_failed": self.frames_failed,
            "max_in_flight": self.max_in_flight,
            "queue_depth": self.queue_depth,
            "steals": self.steals,
            "publish_fallbacks": self.publish_fallbacks,
            "frames_zero_copy": self.frames_zero_copy,
            "frames_via_ring": self.frames_via_ring,
            "ring_bytes_copied": self.ring_bytes_copied,
            "results_zero_copy": self.results_zero_copy,
            "results_via_pickle": self.results_via_pickle,
            "result_bytes_saved": self.result_bytes_saved,
            "restarts": self.restarts,
            "retries": self.retries,
            "requeued": self.requeued,
            "shed": self.shed,
            "pool_grows": self.pool_grows,
            "pool_shrinks": self.pool_shrinks,
            "leaked_slots": self.leaked_slots,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "elapsed_s": self.elapsed_s,
            "throughput_fps": self.throughput_fps,
            "active_elapsed_s": self.active_elapsed_s,
            "active_throughput_fps": self.active_throughput_fps,
            "workers": workers,
        }


@dataclass
class _PendingJob:
    future: "Future[ExtractionResult]"
    worker_id: int  # current owner: backlog shard, or executor once dispatched
    slot: Optional[int]  # ring slot (None on the zero-copy fast path)
    key: int  # pyramid-cache key (frame id, or job id when none supplied)
    pin_slot: Optional[int]  # producer pin on the cached pyramid slot
    height: int = 0  # frame shape, kept so a requeue can rebuild the message
    width: int = 0
    submitted_s: float = 0.0  # perf_counter at submit (attempt elapsed base)
    deadline: Optional[float] = None  # absolute perf_counter budget, or None
    dispatched: bool = False  # True once the message left for a worker queue
    attempts: List[JobAttempt] = field(default_factory=list)

    def message(self, job_id: int) -> Tuple:
        """The worker control message for this job (requeue rebuilds it)."""
        return (job_id, self.key, self.slot, self.height, self.width)


class _SequenceShard:
    """Protocol adapter binding one shard key to a cluster server.

    Satisfies the frame-serving protocol (``submit`` / ``max_in_flight`` /
    ``extractor_config``), so a ``by_sequence`` cluster can drive
    :meth:`repro.slam.SlamSystem.run` — every frame of the sequence lands on
    the worker the key hashes to.  Lifecycle stays with the parent server.
    """

    def __init__(self, server: "ClusterServer", shard_key: int) -> None:
        self._server = server
        self.shard_key = int(shard_key)

    @property
    def extractor_config(self) -> ExtractorConfig:
        return self._server.extractor_config

    @property
    def max_in_flight(self) -> int:
        return self._server.max_in_flight

    def submit(
        self,
        image: GrayImage,
        frame_id: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> "Future[ExtractionResult]":
        return self._server.submit(
            image, shard_key=self.shard_key, frame_id=frame_id, deadline_s=deadline_s
        )


class ClusterServer:
    """Multi-process sharded frame extraction with shared-memory transport.

    Parameters
    ----------
    config:
        Extractor configuration every worker builds its engine pair from
        (defaults to :class:`~repro.config.ExtractorConfig`).  The shared
        ring sizes its slots for ``config.image_shape``; larger frames are
        rejected at submit.
    num_workers:
        Initial worker process count (shards).
    policy:
        Shard policy name (``"round_robin"``, ``"by_sequence"`` or
        ``"least_loaded"``) or a :class:`~repro.cluster.router.ShardPolicy`
        instance.
    max_in_flight:
        Back-pressure bound across the whole cluster; defaults to
        ``2 * num_workers`` like the thread server.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (fast spin-up), else ``spawn``.
    work_stealing:
        When True, an idle worker (own backlog empty, dispatch window
        open) is handed the oldest backlog job of a saturated worker.
        Results stay bit-identical and in submission order — stealing
        only relocates execution — but it deliberately overrides
        ``by_sequence`` affinity under load imbalance, so it is opt-in.
    supervision:
        A :class:`~repro.cluster.supervisor.SupervisorConfig` turns crash
        handling from fail-fast into self-healing: dead workers respawn
        under capped exponential backoff, stalled workers (heartbeat) are
        killed and respawned, and their jobs are requeued through the
        router within ``max_retries`` / ``deadline_s`` budgets.
    elasticity:
        An :class:`~repro.cluster.supervisor.ElasticityConfig` lets the
        control loop grow the pool to ``max_workers`` under queue
        pressure and retire idle workers down to ``min_workers``.
    on_overload:
        What ``submit`` does when the cluster cannot take the frame right
        now (in-flight window full, or no alive worker): ``"block"``
        (default — wait, the thread-server semantics), ``"fail_fast"``
        (raise :class:`~repro.errors.JobFailed` immediately) or
        ``"degrade_to_local"`` (extract in-process with a local-provider
        twin of the same configuration — bit-identical, slower, counted
        in ``ClusterStats.shed``).
    fault_plan:
        A :class:`repro.chaos.FaultPlan` whose scheduled faults (worker
        kills/stalls, publish failures, slow frames) fire synchronously
        inside ``submit`` — the chaos-test entry point.
    result_transport:
        ``"ring"`` (default) packs results into a
        :class:`~repro.cluster.result_ring.SharedResultRing` so the result
        queues carry only tiny slot descriptors; ``"pickle"`` restores the
        pre-ring behaviour (whole results pickled through the queue —
        which also remains the per-result fallback in ``"ring"`` mode).
    result_batch:
        Results a worker buffers before forcing a flush (>= 1, default
        :data:`~repro.cluster.worker.DEFAULT_RESULT_BATCH`); the buffer
        always flushes when the worker's job queue runs dry, so larger
        batches trade pipe syscalls against nothing but saturated-phase
        latency.
    pyramid_retention_s:
        With the ``shared`` pyramid provider, keep each frame's published
        pyramid attachable for this many seconds after its result is
        collected instead of reclaiming the slot immediately
        (session-scoped TTL, ``docs/pyramid.md``).  Sequential replays
        over the same stable frame ids then reuse the cached pyramids
        (``pyramid_cache_stats()["retained_hits"]``).  Ignored for other
        providers.
    registry:
        A :class:`~repro.telemetry.MetricsRegistry` to expose every
        ``cluster_*`` metric through (one is created when omitted;
        reachable as ``server.registry`` either way).
    tracer:
        A :class:`~repro.telemetry.Tracer` for the producer-side spans
        (submit, backlog wait, transport, collect).  Pass one with
        ``enabled=True`` to trace a run; the default tracer is disabled
        and every instrumentation point is a guarded no-op.  Worker
        processes inherit the enabled flag and ship their spans back on
        the result queue; :meth:`trace` returns the merged
        :class:`~repro.telemetry.Trace`.
    journal:
        An :class:`~repro.telemetry.EventJournal` receiving every
        supervision/routing event (restarts, steals, sheds, requeues,
        pool changes, fallbacks, leak reclaims) — always on; one is
        created when omitted.
    """

    def __init__(
        self,
        config: Optional[ExtractorConfig] = None,
        num_workers: int = 2,
        policy: str | ShardPolicy = "round_robin",
        max_in_flight: Optional[int] = None,
        start_method: Optional[str] = None,
        work_stealing: bool = False,
        supervision: Optional[SupervisorConfig] = None,
        elasticity: Optional[ElasticityConfig] = None,
        on_overload: str = "block",
        fault_plan=None,
        result_transport: str = "ring",
        result_batch: int = DEFAULT_RESULT_BATCH,
        pyramid_retention_s: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        journal: Optional[EventJournal] = None,
    ) -> None:
        if num_workers <= 0:
            raise ReproError("num_workers must be positive")
        if pyramid_retention_s is not None and pyramid_retention_s <= 0.0:
            raise ReproError("pyramid_retention_s must be positive")
        if result_transport not in ("ring", "pickle"):
            raise ReproError(
                f"result_transport must be 'ring' or 'pickle', not "
                f"{result_transport!r}"
            )
        if result_batch < 1:
            raise ReproError("result_batch must be >= 1")
        if on_overload not in ("block", "fail_fast", "degrade_to_local"):
            raise ReproError(
                "on_overload must be one of 'block', 'fail_fast', "
                f"'degrade_to_local', not {on_overload!r}"
            )
        if elasticity is not None and elasticity.min_workers > num_workers:
            raise ReproError("num_workers must be >= elasticity.min_workers")
        self.config = config or ExtractorConfig()
        self.num_workers = num_workers
        self.max_in_flight = 2 * num_workers if max_in_flight is None else max_in_flight
        if self.max_in_flight < num_workers:
            raise ReproError("max_in_flight must be >= num_workers")
        self.policy = policy if isinstance(policy, ShardPolicy) else create_policy(policy)
        self.work_stealing = bool(work_stealing)
        self.supervision = supervision
        self.elasticity = elasticity
        self.on_overload = on_overload
        self.fault_plan = fault_plan
        self.result_transport = result_transport
        self.result_batch = int(result_batch)
        self._context = get_mp_context(start_method)
        self._slot_bytes = self.config.image_height * self.config.image_width
        self._ring = SharedFrameRing(self.max_in_flight, self._slot_bytes)
        # shared pyramid provider: the producer builds each frame's pyramid
        # once into a shared-memory cache and pins the slot; workers attach
        # zero-copy by cache key and the ring is only the publish-failure
        # fallback (docs/pyramid.md)
        self._pyramid_cache = (
            SharedPyramidCache.create(
                self.config,
                num_slots=self.max_in_flight,
                context=self._context,
                retention_s=pyramid_retention_s,
            )
            if self.config.pyramid.provider == "shared"
            else None
        )
        self._pyramid_handle = (
            self._pyramid_cache.handle() if self._pyramid_cache is not None else None
        )
        capacity = num_workers
        if elasticity is not None:
            capacity = max(capacity, elasticity.max_workers)
        # heartbeat board: one monotonic timestamp per worker slot, written
        # by the worker between jobs, read by the supervisor's stall check;
        # torn double reads are tolerable (the check is a heuristic and a
        # false kill only costs a retry, never a wrong result)
        self._heartbeats = self._context.Array("d", capacity, lock=False)
        self._worker_capacity = capacity
        # result ring: one slot range per worker slot (elastic capacity
        # included, like the heartbeat board).  A range holds enough slots
        # for a full unflushed batch plus the dispatch window that can be
        # in flight ahead of the collector; a momentarily exhausted range
        # just falls back to pickling that result.
        self._result_ring = (
            SharedResultRing(
                capacity,
                self.result_batch + DISPATCH_DEPTH + 2,
                max_packed_nbytes(self.config),
            )
            if result_transport == "ring"
            else None
        )
        self._result_ring_handle = (
            self._result_ring.handle() if self._result_ring is not None else None
        )
        # makes "dequeue one result message + fold it" atomic, so when a
        # worker dies the death handler can drain its queue to empty and
        # know no stale descriptor into the dead range is still in flight
        # on the collector thread (see _on_worker_exit)
        self._collect_lock = threading.Lock()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(track="server")
        self.journal = journal if journal is not None else EventJournal()
        self._trace = Trace()
        self.stats = ClusterStats(registry=self.registry)
        for _ in range(num_workers):
            self.stats._add_worker(alive=True, state=WORKER_RUNNING)
        # transport occupancy as callback gauges: read live from the rings at
        # snapshot time instead of mirroring every acquire/release
        self.registry.gauge(
            "cluster_frame_ring_in_flight",
            help="frame-ring slots currently acquired",
            fn=_safe_metric_read(lambda: self._ring.in_flight()),
        )
        if self._result_ring is not None:
            self.registry.gauge(
                "cluster_result_ring_in_use",
                help="result-ring slots currently claimed",
                fn=_safe_metric_read(lambda: self._result_ring.in_use()),
            )
        if self._pyramid_cache is not None:
            self._pyramid_cache.register_metrics(self.registry)
        # one job queue AND one result queue per worker: multiprocessing
        # queues guard their pipe ends with cross-process locks, and a
        # worker SIGKILLed mid-put would leave a *shared* result queue's
        # write lock held forever, deadlocking every other worker's flush.
        # Per-worker queues confine that damage to the dead worker's own
        # queues, which a respawn replaces wholesale.
        self._result_queues = [self._context.Queue() for _ in range(num_workers)]
        self._job_queues = [self._context.Queue() for _ in range(num_workers)]
        # queues of crashed workers: never written again, but drained until
        # close so results the dead worker flushed before dying still count
        self._retired_result_queues: List = []
        self._processes: List = []
        self._pending: Dict[int, _PendingJob] = {}
        self._key_pending: Dict[int, int] = {}  # cache key -> in-flight jobs
        # keys a dead worker may have touched: their cache entries are
        # force-retired at final release to void leaked consumer leases
        self._crashed_keys: set = set()
        self._lock = threading.Lock()
        self._next_job_id = 0
        self._closed = False
        self._closing = False
        self._close_lock = threading.Lock()
        self._draining = False
        self._local_extractor = None
        self._local_lock = threading.Lock()
        self._stall_timers: List[threading.Timer] = []
        # admission window: one condition variable is the whole back-pressure
        # story — completions notify it, so a blocked submit wakes in
        # microseconds instead of a poll tick; worker death, respawn and
        # close also notify so blocked producers re-check liveness
        self._admission = threading.Condition()
        self._admitted = 0
        # dispatcher state: per-worker backlogs held server-side, at most
        # DISPATCH_DEPTH jobs resident in a worker's own queue at a time
        self._dispatch_cv = threading.Condition()
        self._backlogs: List[deque] = [deque() for _ in range(num_workers)]
        self._dispatched = [0] * num_workers
        self._dispatcher_stop = False
        try:
            for worker_id in range(num_workers):
                self._processes.append(
                    self._start_worker_process(
                        worker_id,
                        self._job_queues[worker_id],
                        self._result_queues[worker_id],
                    )
                )
        except BaseException:
            # partial spin-up: tear down what started before surfacing the
            # error, so no worker blocks on a queue that will never be fed
            for process in self._processes:
                process.terminate()
                process.join(timeout=5.0)
            for any_queue in self._job_queues + self._result_queues:
                any_queue.close()
                any_queue.cancel_join_thread()
            self._ring.close()
            if self._result_ring is not None:
                self._result_ring.close()
            if self._pyramid_cache is not None:
                self._pyramid_cache.close()
            raise
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="cluster-dispatcher", daemon=True
        )
        self._dispatcher.start()
        self._collector = threading.Thread(
            target=self._collect_results, name="cluster-collector", daemon=True
        )
        self._collector.start()
        self._supervisor: Optional[Supervisor] = None
        if supervision is not None or elasticity is not None:
            self._supervisor = Supervisor(self, supervision, elasticity)
            self._supervisor.start()

    def _start_worker_process(self, worker_id: int, job_queue, result_queue):
        """Spawn one worker process over its queue pair and return it started."""
        process = self._context.Process(
            target=worker_main,
            args=(
                worker_id,
                self.config,
                self._ring.name,
                self._slot_bytes,
                job_queue,
                result_queue,
                self._pyramid_handle,
                self._heartbeats,
                self._result_ring_handle,
                self.result_batch,
                self.tracer.enabled,
            ),
            name=f"cluster-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        return process

    # -- protocol ----------------------------------------------------------
    @property
    def extractor_config(self) -> ExtractorConfig:
        """Configuration every worker's engine pair was built from."""
        return self.config

    def sequence_handle(self, shard_key: int) -> _SequenceShard:
        """Frame-serving view pinned to ``shard_key`` (``by_sequence`` use)."""
        return _SequenceShard(self, shard_key)

    def pyramid_cache_stats(self) -> Optional[Dict[str, object]]:
        """Aggregate shared-pyramid-cache counters (``None`` unless the
        configuration selects the ``shared`` pyramid provider).  The cache's
        own hit/miss/publish counters are joined with the server-side fast
        path counters, so one report tells the whole zero-copy story."""
        if self._pyramid_cache is None:
            return None
        report = self._pyramid_cache.stats()
        report["publish_fallbacks"] = self.stats.publish_fallbacks
        report["zero_copy_frames"] = self.stats.frames_zero_copy
        report["ring_fallback_frames"] = self.stats.frames_via_ring
        return report

    def trace(self) -> Trace:
        """The merged cross-process trace of this server's run so far.

        Drains the producer-side tracer into the merge (worker buffers are
        folded in as their result flushes arrive) and returns the
        :class:`~repro.telemetry.Trace` — call after the frames of
        interest have resolved, then ``export_chrome_trace(path)`` it.
        """
        self._trace.add_spans(self.tracer.track, self.tracer.drain())
        return self._trace

    def alive_worker_ids(self) -> List[int]:
        """Worker ids currently serving (``state == "running"``)."""
        return [worker.worker_id for worker in self.stats.workers if worker.alive]

    @property
    def pool_size(self) -> int:
        """Number of alive workers (the elastic pool's current size)."""
        return len(self.alive_worker_ids())

    # -- serving -----------------------------------------------------------
    def submit(
        self,
        image: GrayImage,
        shard_key: Optional[int] = None,
        frame_id: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> "Future[ExtractionResult]":
        """Queue one frame; blocks while ``max_in_flight`` frames are pending.

        Returns a future resolving to the same
        :class:`~repro.features.ExtractionResult` sequential extraction
        would produce.  ``frame_id`` keys pyramid reuse: submissions of the
        same frame under the same id (multi-engine comparisons, replays)
        share one published pyramid instead of building per submission.
        ``deadline_s`` optionally bounds the frame's total serving budget;
        a supervised cluster fails the job with
        :class:`~repro.errors.JobFailed` (attempt history attached) instead
        of retrying it past the budget.  With ``on_overload`` set to
        ``"fail_fast"`` or ``"degrade_to_local"`` an overloaded cluster
        sheds the submission instead of blocking.  Raises
        :class:`~repro.errors.ReproError` when the server is closed, the
        routed worker has died (unsupervised), or every worker has died
        with no restart pending.
        """
        if self._closed or self._closing:
            raise ReproError("ClusterServer is closed")
        if frame_id is not None and frame_id < 0:
            raise ReproError("frame ids must be non-negative")
        if deadline_s is not None and deadline_s <= 0.0:
            raise ReproError("deadline_s must be positive")
        with self._lock:
            job_id = self._next_job_id
            self._next_job_id += 1
        key = int(frame_id) if frame_id is not None else job_id
        if self.fault_plan is not None:
            self.fault_plan.on_submit(self, job_id)
        submitted_s = time.perf_counter()
        deadline = submitted_s + deadline_s if deadline_s is not None else None
        if self.on_overload == "block":
            self._acquire_admission()
        elif not self._try_acquire_admission():
            return self._shed_submission(image, "cluster saturated")
        slot: Optional[int] = None
        pin_slot: Optional[int] = None
        registered = False
        worker_id = 0
        try:
            while True:
                worker_id = self._route_once(job_id, shard_key)
                if worker_id is not None:
                    break
                if self.on_overload == "block":
                    self._wait_for_alive_worker()
                    continue
                self._release_admission()
                return self._shed_submission(image, "no alive worker (rebuilding)")
            future: "Future[ExtractionResult]" = Future()
            zero_copy = fallback = False
            if self._pyramid_cache is not None:
                # zero-copy fast path: publish the whole pyramid (level 0
                # included) and pin the slot so it can neither be evicted
                # nor reclaimed before the worker attaches; on success the
                # ring write is skipped entirely
                forced_miss = (
                    self.fault_plan is not None
                    and self.fault_plan.take_publish_failure()
                )
                with self.tracer.span("publish_pyramid", frame=key):
                    if not forced_miss and self._pyramid_cache.publish(
                        key, image.pixels
                    ):
                        pin_slot = self._pyramid_cache.pin(key)
                zero_copy = pin_slot is not None
                fallback = not zero_copy
                if fallback:
                    self.journal.log(
                        "publish_fallback", job=job_id, key=key, forced=forced_miss
                    )
            if zero_copy:
                height, width = image.pixels.shape
            else:
                with self.tracer.span("ring_write", frame=key):
                    slot = self._ring.acquire(timeout=_RING_ACQUIRE_TIMEOUT_S)
                    if slot is None:
                        self.stats._leaked(1)
                        self.journal.log(
                            "leak_reclaim",
                            job=job_id,
                            reason="frame ring exhausted inside admission window",
                        )
                        raise ReproError(
                            "no free frame ring slot inside the admission window "
                            "(slot leak?)"
                        )
                    height, width = self._ring.write(slot, image.pixels)
            job = _PendingJob(
                future,
                worker_id,
                slot,
                key,
                pin_slot,
                height=height,
                width=width,
                submitted_s=submitted_s,
                deadline=deadline,
            )
            # register + backlog-append under BOTH locks (dispatch CV outer,
            # state lock inner — the same nesting the death handler takes),
            # so a worker death can never interleave between the alive
            # re-check and the append and orphan the message
            with self._dispatch_cv:
                with self._lock:
                    target = worker_id
                    if not self.stats.workers[target].alive:
                        target = self._fallback_target_locked(target)
                    job.worker_id = target
                    self._pending[job_id] = job
                    self._key_pending[key] = self._key_pending.get(key, 0) + 1
                    registered = True
                worker_id = target
                self.stats._submitted(target)
                self.stats._transport(
                    zero_copy, 0 if zero_copy else height * width, fallback
                )
                self._backlogs[target].append(job.message(job_id))
                self._dispatch_cv.notify_all()
            self.tracer.complete(
                "submit",
                submitted_s,
                frame=key,
                worker=worker_id,
                transport="zero_copy" if zero_copy else "ring",
            )
            return future
        except BaseException:
            if registered:
                with self._lock:
                    job = self._pending.pop(job_id, None)
                if job is not None:
                    self.stats._abandoned(worker_id)
                    self._release_job_resources(job, crashed=True)
            else:
                if slot is not None:
                    self._ring.release(slot)
                if pin_slot is not None:
                    self._pyramid_cache.unpin(pin_slot)
                if self._pyramid_cache is not None:
                    with self._lock:
                        key_in_use = self._key_pending.get(key, 0)
                    if key_in_use == 0:
                        # the pyramid may already be published for a job that
                        # will never run; free its cache slot too
                        self._pyramid_cache.retire(key, force=True)
            self._release_admission()
            raise

    def _route_once(self, job_id: int, shard_key: Optional[int]) -> Optional[int]:
        """One routing pass: an alive worker id, or ``None`` (supervised,
        nothing alive right now — the caller waits or sheds)."""
        loads = self.stats.load_view()
        if not any(load.alive for load in loads):
            if self.supervision is not None or self.on_overload != "block":
                return None
            raise ReproError("every cluster worker has died; serving halted")
        worker_id = self.policy.route(job_id, shard_key, len(loads), loads=loads)
        if not 0 <= worker_id < len(loads):
            raise ReproError(
                f"shard policy routed to worker {worker_id}, outside "
                f"[0, {len(loads)})"
            )
        if loads[worker_id].alive:
            return worker_id
        if self.supervision is None and self.elasticity is None:
            raise ReproError(
                f"cluster worker {worker_id} has died; frame cannot be served"
            )
        # supervised/elastic: the policy's first choice is down (dead,
        # restarting or retired) — reroute to the shallowest alive queue
        return route_to_alive(loads)

    def _fallback_target_locked(self, worker_id: int) -> int:
        """Replacement owner when ``worker_id`` died after routing.

        Callers hold ``_dispatch_cv`` + ``_lock``.  Prefers the shallowest
        alive queue; with supervision the routed worker's own backlog is an
        acceptable parking spot while its restart is pending (the
        dispatcher skips non-alive workers and the respawn drains it).
        """
        best: Optional[int] = None
        best_load: Optional[Tuple[int, float, int]] = None
        for worker in self.stats.workers:
            if not worker.alive:
                continue
            load = (worker.queue_depth, worker.ewma_latency_s, worker.worker_id)
            if best_load is None or load < best_load:
                best, best_load = worker.worker_id, load
        if best is not None:
            return best
        if self.supervision is None:
            raise ReproError(
                f"cluster worker {worker_id} has died; frame cannot be served"
            )
        worker = self.stats.workers[worker_id]
        if worker.state == WORKER_DEAD:
            return worker_id  # held until the supervisor respawns it
        for candidate in self.stats.workers:
            if candidate.state == WORKER_DEAD:
                return candidate.worker_id
        raise ReproError("every cluster worker has died; serving halted")

    def _shed_submission(
        self, image: GrayImage, reason: str
    ) -> "Future[ExtractionResult]":
        """Refuse or locally serve one submission the cluster cannot take."""
        self.stats._shed()
        self.journal.log("shed", reason=reason, mode=self.on_overload)
        attempt = JobAttempt(worker_id=-1, reason=f"shed: {reason}", elapsed_s=0.0)
        if self.on_overload == "fail_fast":
            raise JobFailed(f"submission shed: {reason}", (attempt,))
        # degrade_to_local: same configuration, local pyramid provider, so
        # the result is bit-identical to what a worker would have produced
        future: "Future[ExtractionResult]" = Future()
        try:
            future.set_result(self._extract_locally(image))
        except BaseException as error:  # surface through the future
            future.set_exception(error)
        return future

    def _extract_locally(self, image: GrayImage) -> ExtractionResult:
        with self._local_lock:
            if self._local_extractor is None:
                from ..features import OrbExtractor

                self._local_extractor = OrbExtractor(
                    local_extraction_config(self.config)
                )
            return self._local_extractor.extract(image)

    def extract_many(
        self,
        images: Iterable[GrayImage],
        shard_keys: Optional[Sequence[int]] = None,
        frame_ids: Optional[Sequence[int]] = None,
    ) -> List[ExtractionResult]:
        """Extract every image across the cluster; results in submission order.

        ``shard_keys`` optionally supplies one affinity key per image
        (required by the ``by_sequence`` policy); ``frame_ids`` optionally
        supplies stable pyramid-cache keys.  Submission interleaves with
        completion through the bounded in-flight window, and the returned
        list is reassembled in order regardless of which worker finished
        first.
        """
        futures = []
        for index, image in enumerate(images):
            futures.append(
                self.submit(
                    image,
                    shard_key=shard_keys[index] if shard_keys is not None else None,
                    frame_id=frame_ids[index] if frame_ids is not None else None,
                )
            )
        return [future.result() for future in futures]

    # -- admission (back-pressure) -----------------------------------------
    def _recovery_possible(self) -> bool:
        """True while a supervised restart could bring a worker back."""
        if self.supervision is None:
            return False
        return any(worker.state == WORKER_DEAD for worker in self.stats.workers)

    def _acquire_admission(self) -> None:
        """Block until the in-flight window has room, watching worker health.

        Wake-ups are notifications (completion, worker death/respawn,
        close) — the short wait timeout below is only a lost-wakeup safety
        net, not the release latency.
        """
        with self._admission:
            while True:
                if self._closed:
                    raise ReproError(
                        "ClusterServer closed while waiting for an admission slot"
                    )
                if not any(worker.alive for worker in self.stats.workers):
                    if not self._recovery_possible():
                        raise ReproError(
                            "every cluster worker has died; serving halted"
                        )
                elif self._admitted < self.max_in_flight:
                    self._admitted += 1
                    return
                self._admission.wait(timeout=1.0)

    def _try_acquire_admission(self) -> bool:
        """Non-blocking admission: False when the window is full."""
        with self._admission:
            if self._closed:
                raise ReproError("ClusterServer is closed")
            if self._admitted < self.max_in_flight:
                self._admitted += 1
                return True
            return False

    def _release_admission(self) -> None:
        with self._admission:
            self._admitted -= 1
            self._admission.notify()

    def _wait_for_alive_worker(self) -> None:
        """Park a blocked producer until a worker is alive again."""
        with self._admission:
            while True:
                if self._closed:
                    raise ReproError(
                        "ClusterServer closed while waiting for a worker restart"
                    )
                if any(worker.alive for worker in self.stats.workers):
                    return
                if not self._recovery_possible():
                    raise ReproError("every cluster worker has died; serving halted")
                self._admission.wait(timeout=0.05)

    # -- dispatch / work stealing ------------------------------------------
    def _dispatch_loop(self) -> None:
        """Move backlog jobs into worker queues, stealing for idle workers."""
        while True:
            with self._dispatch_cv:
                assignment = None
                while assignment is None:
                    if self._dispatcher_stop:
                        return
                    assignment = self._next_assignment()
                    if assignment is None:
                        self._dispatch_cv.wait(timeout=0.2)
                worker_id, message, victim_id = assignment
                self._dispatched[worker_id] += 1
                job_id = message[0]
                with self._lock:
                    job = self._pending.get(job_id)
                    if job is not None:
                        job.dispatched = True
                        if victim_id is not None:
                            job.worker_id = worker_id
            if job is None:
                # the job expired or failed while queued; give the window
                # back and drop the stale message
                with self._dispatch_cv:
                    self._dispatched[worker_id] = max(
                        0, self._dispatched[worker_id] - 1
                    )
                continue
            if victim_id is not None:
                self.stats._stolen(victim_id, worker_id)
                self.journal.log(
                    "steal", worker_id=worker_id, victim=victim_id, job=job_id
                )
            if self.tracer.enabled:
                # backlog wait: submit hand-off until the dispatcher moved
                # the job toward a worker queue (cross-thread, async kind)
                self.tracer.record(
                    "backlog_wait",
                    job.submitted_s,
                    time.perf_counter(),
                    frame=job.key,
                    worker=worker_id,
                )
            try:
                self._job_queues[worker_id].put(message)
            except BaseException:
                self._dispatch_failed(worker_id, job_id)

    def _next_assignment(self):
        """One (worker, job, stolen-from) triple, or None.  Caller holds CV.

        A worker with an open dispatch window takes its own backlog first;
        with ``work_stealing`` it otherwise takes the oldest job from the
        deepest backlog of a *saturated* worker (dispatch window full), so
        stealing moves genuinely-waiting work and never races a victim that
        would have dispatched the job itself in this same pass.
        """
        pool = len(self._backlogs)
        for worker_id in range(pool):
            if not self.stats.workers[worker_id].alive:
                continue
            if self._dispatched[worker_id] >= DISPATCH_DEPTH:
                continue
            if self._backlogs[worker_id]:
                return worker_id, self._backlogs[worker_id].popleft(), None
            if not self.work_stealing:
                continue
            victim_id, victim_depth = None, 0
            for other in range(pool):
                if other == worker_id or not self.stats.workers[other].alive:
                    continue
                if self._dispatched[other] < DISPATCH_DEPTH:
                    continue  # victim would drain its own backlog anyway
                if len(self._backlogs[other]) > victim_depth:
                    victim_id, victim_depth = other, len(self._backlogs[other])
            if victim_id is not None:
                return worker_id, self._backlogs[victim_id].popleft(), victim_id
        return None

    def _dispatch_failed(self, worker_id: int, job_id: int) -> None:
        """Handle a job whose queue hand-off raised (torn-down queue)."""
        failed_job = None
        with self._dispatch_cv:
            self._dispatched[worker_id] = max(0, self._dispatched[worker_id] - 1)
            with self._lock:
                job = self._pending.get(job_id)
                if job is None or job.worker_id != worker_id:
                    return  # already failed or requeued by the death handler
                if self.supervision is not None and not self._closing:
                    # the death handler (or respawn) will move it; putting
                    # it back preserves submission order at the front
                    job.dispatched = False
                    self._backlogs[worker_id].appendleft(job.message(job_id))
                    self._dispatch_cv.notify_all()
                    return
                del self._pending[job_id]
                failed_job = job
        self.stats._failed(failed_job.worker_id)
        self._release_job_resources(failed_job, crashed=True)
        self._release_admission()
        failed_job.future.set_exception(
            ReproError(f"cluster worker {worker_id} queue rejected the frame")
        )

    # -- result collection / worker health ---------------------------------
    def _collect_results(self) -> None:
        """Sweep every worker's result queue, folding batches into futures.

        The sweep covers live queues AND the retired queues of crashed
        workers, so results a worker flushed just before dying still
        complete their futures (the requeued duplicate, if any, is
        discarded when ``_pending`` comes up empty).  Idle passes block on
        the queues' underlying pipes via ``connection.wait`` — one poll
        for N queues — falling back to a plain sleep when the pipe handles
        are not exposed.
        """
        while True:
            with self._lock:
                queues = list(self._result_queues) + self._retired_result_queues
            drained_any = False
            for result_queue in queues:
                while True:
                    # dequeue + fold under one lock: a death handler that
                    # sees this queue empty knows no descriptor from it is
                    # still being folded (range reclaim safety)
                    with self._collect_lock:
                        try:
                            message = result_queue.get_nowait()
                        except queue_module.Empty:
                            break
                        except (EOFError, OSError, ValueError):
                            break  # queue torn down (close, or crashed worker)
                        drained_any = True
                        self._fold_result_batch(message)
            if drained_any:
                continue
            if self._closed and not self._pending:
                return
            self._check_worker_health()
            try:
                readers = [result_queue._reader for result_queue in queues]
                mp_connection_wait(readers, timeout=_HEALTH_POLL_S)
            except (AttributeError, OSError, ValueError):
                time.sleep(_HEALTH_POLL_S)

    def _drain_worker_result_queue(self, worker_id: int) -> None:
        """Fold everything a (dead) worker's result queue still holds.

        Each dequeue+fold is atomic under ``_collect_lock`` — shared with
        the collector sweep — so when this returns on ``Empty`` no message
        from the queue is mid-fold anywhere: results the worker flushed
        before dying have completed their futures and returned their ring
        slots, and the caller may safely force-reclaim the range.  (A
        SIGKILL mid-put can truncate the stream; the unreadable remainder
        surfaces as an error below and the jobs it carried are simply
        requeued like any other loss.)
        """
        while True:
            with self._collect_lock:
                result_queue = self._result_queues[worker_id]
                try:
                    message = result_queue.get_nowait()
                except queue_module.Empty:
                    return
                except (EOFError, OSError, ValueError):
                    return  # torn stream (killed mid-put / queue closed)
                self._fold_result_batch(message)

    def _fold_result_batch(self, message) -> None:
        worker_id, batch, trace_blob = message
        if trace_blob is not None:
            # the worker's drained span buffer rode along with this flush;
            # its clock-at-flush stamp feeds the track's offset calibration
            worker_clock_s, worker_records = trace_blob
            self._trace.add_worker_spans(
                f"worker-{worker_id}", worker_records, worker_clock_s
            )
        with self._dispatch_cv:
            # the executor finished len(batch) jobs: reopen its window
            self._dispatched[worker_id] = max(
                0, self._dispatched[worker_id] - len(batch)
            )
            self._dispatch_cv.notify_all()
        for job_id, payload, latency_s, error in batch:
            with self._lock:
                job = self._pending.pop(job_id, None)
            if job is None:
                # failed/expired earlier, or a pre-requeue duplicate from
                # a worker that flushed before dying — but a packed slot
                # must return to its range either way
                if isinstance(payload, RingSlotRef):
                    self._result_ring.free(payload.slot)
                continue
            # account the completion BEFORE freeing transport resources
            # and the admission slot: a producer blocked on admission
            # must not see the window shrink before the in-flight
            # counter does (else max_in_flight can overshoot).  The
            # accounting target is the job's CURRENT owner — after a
            # steal or crash requeue that is where its queue_depth sits.
            if error is None:
                if isinstance(payload, RingSlotRef):
                    # one memcpy out of the shared slot, then the slot is
                    # immediately reusable by its worker
                    packed = self._result_ring.slot_view(payload.slot)
                    result = unpack_result(packed[: payload.nbytes])
                    self._result_ring.free(payload.slot)
                    self.stats._result_transport(True, payload.nbytes)
                else:
                    result = payload
                    self.stats._result_transport(False, 0)
                self.stats._completed(job.worker_id, latency_s)
                self._release_job_resources(job)
                self._release_admission()
                job.future.set_result(result)
                if self.tracer.enabled:
                    self.tracer.record(
                        "serve",
                        job.submitted_s,
                        time.perf_counter(),
                        frame=job.key,
                        worker=worker_id,
                    )
                    self.tracer.instant("resolve", frame=job.key)
            else:
                self.stats._failed(job.worker_id)
                self._release_job_resources(job)
                self._release_admission()
                job.future.set_exception(
                    ReproError(
                        f"cluster worker {worker_id} extraction failed: {error}"
                    )
                )

    def _release_job_resources(self, job: _PendingJob, crashed: bool = False) -> None:
        """Free a collected job's transport resources.

        A collected result proves the worker is done with the shared pages:
        the ring slot (if the frame travelled by ring) returns to the pool,
        the producer's pin on the cached pyramid is released, and the cache
        entry is retired once no other in-flight job shares its key.
        ``crashed`` (or a key touched by a dead worker — ``_crashed_keys``)
        forces the retire, voiding consumer leases a dead process can never
        return, so crash paths reclaim every slot they leased.
        """
        if job.slot is not None:
            self._ring.release(job.slot)
        if self._pyramid_cache is not None and job.pin_slot is not None:
            self._pyramid_cache.unpin(job.pin_slot)
        with self._lock:
            remaining = self._key_pending.get(job.key, 1) - 1
            if remaining <= 0:
                self._key_pending.pop(job.key, None)
                force = crashed or job.key in self._crashed_keys
                self._crashed_keys.discard(job.key)
            else:
                self._key_pending[job.key] = remaining
        if remaining <= 0 and self._pyramid_cache is not None:
            self._pyramid_cache.retire(job.key, force=force)

    def _check_worker_health(self) -> None:
        for worker_id, process in enumerate(list(self._processes)):
            worker = self.stats.workers[worker_id]
            if process.exitcode is None:
                continue
            if worker.state == WORKER_RETIRING:
                self._finish_retire(worker_id)
                continue
            if not worker.alive:
                continue
            if self._draining and process.exitcode == 0:
                continue  # normal sentinel exit while close() drains
            self._on_worker_exit(worker_id, process.exitcode)

    def _on_worker_exit(
        self, worker_id: int, exitcode: Optional[int], reason: Optional[str] = None
    ) -> None:
        """Fold one worker death into job state: fail (legacy) or requeue.

        Without supervision this matches the historical fail-fast handling
        (jobs fail with a :class:`~repro.errors.ReproError`, the worker is
        permanently down).  With supervision the worker is marked ``dead``
        for the supervisor to respawn, and every job it owned is requeued
        through the router — front of the target backlog, submission order
        preserved — unless its deadline or retry budget is exhausted, in
        which case it fails with a :class:`~repro.errors.JobFailed`
        carrying the attempt history.
        """
        now = time.perf_counter()
        reason = reason or f"died (exit code {exitcode})"
        # Fold whatever the dead worker flushed before dying FIRST: those
        # futures complete (no wasted recompute), their ring slots free,
        # and — because dequeue+fold is atomic — once the queue reads
        # empty no descriptor into the dead range is in flight anywhere.
        # The process is already joined, so the queue gains nothing more.
        self._drain_worker_result_queue(worker_id)
        failures: List[Tuple[_PendingJob, Exception]] = []
        requeued = 0
        with self._dispatch_cv:
            with self._lock:
                worker = self.stats.workers[worker_id]
                if worker.state != WORKER_RUNNING:
                    return  # already handled (kill + health check race)
                supervised = self.supervision is not None
                worker.state = WORKER_DEAD if supervised else WORKER_FAILED
                worker.alive = False
                doomed = sorted(
                    (
                        (job_id, job)
                        for job_id, job in self._pending.items()
                        if job.worker_id == worker_id
                    ),
                    reverse=True,  # appendleft in descending id keeps order
                )
                for job_id, _ in doomed:
                    del self._pending[job_id]
                self._backlogs[worker_id].clear()
                self._dispatched[worker_id] = 0
                if self._result_ring is not None:
                    # force-reclaim the dead range (mirrors pyramid leak
                    # handling): the drain above proved no descriptor into
                    # it survives, and a respawn cannot begin before this
                    # block publishes the DEAD state, so the reclaim can
                    # never race a replacement worker's claims
                    self._result_ring.reclaim_range(worker_id)
                for job_id, job in doomed:
                    if not supervised:
                        failures.append(
                            (
                                job,
                                ReproError(
                                    f"cluster worker {worker_id} {reason} "
                                    "with frames in flight"
                                ),
                            )
                        )
                        continue
                    was_dispatched = job.dispatched
                    if was_dispatched:
                        # only a job that actually reached the worker burns
                        # retry budget; a queued job just moves
                        job.attempts.append(
                            JobAttempt(worker_id, reason, now - job.submitted_s)
                        )
                    if job.deadline is not None and now > job.deadline:
                        failures.append(
                            (
                                job,
                                JobFailed(
                                    f"frame deadline expired after worker "
                                    f"{worker_id} {reason}",
                                    tuple(job.attempts),
                                ),
                            )
                        )
                        continue
                    if len(job.attempts) > self.supervision.max_retries:
                        failures.append(
                            (
                                job,
                                JobFailed(
                                    f"retry budget of "
                                    f"{self.supervision.max_retries} exhausted",
                                    tuple(job.attempts),
                                ),
                            )
                        )
                        continue
                    target = self._fallback_target_locked(worker_id)
                    job.worker_id = target
                    job.dispatched = False
                    self._pending[job_id] = job
                    self._backlogs[target].appendleft(job.message(job_id))
                    self._crashed_keys.add(job.key)
                    self.stats._requeued(worker_id, target, retried=was_dispatched)
                    requeued += 1
            self._dispatch_cv.notify_all()
        self.journal.log(
            "worker_dead",
            worker_id=worker_id,
            exitcode=exitcode,
            reason=reason,
            requeued=requeued,
            failed=len(failures),
        )
        if requeued:
            self.journal.log("requeue", worker_id=worker_id, jobs=requeued)
        for job, error in failures:
            self.stats._failed(worker_id)
            self._release_job_resources(job, crashed=True)
            self._release_admission()
            job.future.set_exception(error)
        with self._admission:
            self._admission.notify_all()  # blocked producers re-check liveness

    def kill_worker(self, worker_id: int) -> None:
        """Fault-injection hook: kill one worker and surface the failure.

        Used by the crash tests (and :class:`repro.chaos.FaultPlan`): the
        worker process is killed and joined; without supervision every
        submission pending on it fails with a
        :class:`~repro.errors.ReproError`, with supervision its jobs are
        requeued and the supervisor respawns it.
        """
        if not 0 <= worker_id < len(self.stats.workers):
            raise ReproError(f"no cluster worker {worker_id}")
        process = self._processes[worker_id]
        if process.exitcode is None:
            process.kill()
        process.join()
        self._on_worker_exit(worker_id, process.exitcode)

    # -- chaos hooks (repro.chaos.FaultPlan) --------------------------------
    def chaos_kill(self, worker_id: Optional[int] = None) -> Optional[int]:
        """Kill one alive worker (SIGKILL) and fold the death in synchronously.

        ``worker_id`` is a preference; a dead/retired preference falls back
        to the first alive worker.  Returns the killed worker id, or
        ``None`` when nothing was alive to kill.
        """
        target = self._pick_chaos_target(worker_id)
        if target is None:
            return None
        process = self._processes[target]
        if process.exitcode is None:
            process.kill()
        process.join(timeout=5.0)
        self._on_worker_exit(target, process.exitcode, reason="chaos kill")
        return target

    def chaos_stall(
        self, worker_id: Optional[int] = None, duration_s: float = 0.2
    ) -> Optional[int]:
        """SIGSTOP one alive worker, SIGCONT after ``duration_s`` (timer).

        While stopped the worker stops heartbeating, so a supervised
        cluster with a short ``heartbeat_timeout_s`` will kill and respawn
        it — the stall-detection path of the chaos matrix.  Returns the
        stalled worker id or ``None``.
        """
        target = self._pick_chaos_target(worker_id)
        if target is None:
            return None
        pid = self._processes[target].pid
        try:
            os.kill(pid, signal.SIGSTOP)
        except (ProcessLookupError, OSError):
            return None

        def _resume() -> None:
            try:
                os.kill(pid, signal.SIGCONT)
            except (ProcessLookupError, OSError):
                pass

        timer = threading.Timer(duration_s, _resume)
        timer.daemon = True
        timer.start()
        self._stall_timers.append(timer)
        return target

    def _pick_chaos_target(self, worker_id: Optional[int]) -> Optional[int]:
        workers = self.stats.workers
        if (
            worker_id is not None
            and 0 <= worker_id < len(workers)
            and workers[worker_id].alive
        ):
            return worker_id
        for worker in workers:
            if worker.alive:
                return worker.worker_id
        return None

    # -- supervisor-facing mechanics ---------------------------------------
    def _dispatched_count(self, worker_id: int) -> int:
        with self._dispatch_cv:
            return self._dispatched[worker_id]

    def _last_heartbeat(self, worker_id: int) -> float:
        return float(self._heartbeats[worker_id])

    def _worker_is_idle(self, worker_id: int) -> bool:
        """No backlog and no dispatched jobs (elastic retirement check)."""
        with self._dispatch_cv:
            return (
                not self._backlogs[worker_id] and self._dispatched[worker_id] == 0
            )

    def _kill_stalled_worker(self, worker_id: int, stalled_for_s: float) -> None:
        """Kill a heartbeat-stalled worker; its jobs requeue like a crash."""
        process = self._processes[worker_id]
        if process.exitcode is None:
            try:
                process.kill()
            except Exception:
                return
        process.join(timeout=5.0)
        self.journal.log(
            "stall_kill", worker_id=worker_id, stalled_for_s=round(stalled_for_s, 3)
        )
        self._on_worker_exit(
            worker_id,
            process.exitcode,
            reason=f"stalled (no heartbeat for {stalled_for_s:.1f}s); killed",
        )

    def _respawn_worker(self, worker_id: int) -> bool:
        """Restart one dead worker slot with the same engine configuration.

        Fresh job AND result queues replace the dead worker's pair before
        the slot is marked alive: stale job messages (already requeued
        elsewhere) can never reach the replacement, and a lock the dead
        process held on either old queue can never wedge the new one.  The
        old result queue moves to the retired list so anything the worker
        flushed before dying is still collected.  Returns False when the
        server is closing, the slot is not restartable, or the spawn
        itself failed (the supervisor retries after backoff).
        """
        if self._closed or self._closing:
            return False
        worker = self.stats.workers[worker_id]
        if worker.state != WORKER_DEAD:
            return False
        old_process = self._processes[worker_id]
        if old_process.exitcode is None:
            return False  # still exiting; next tick
        new_queue = self._context.Queue()
        new_result_queue = self._context.Queue()
        self._heartbeats[worker_id] = 0.0
        try:
            process = self._start_worker_process(
                worker_id, new_queue, new_result_queue
            )
        except Exception:
            for failed_queue in (new_queue, new_result_queue):
                failed_queue.close()
                failed_queue.cancel_join_thread()
            return False
        old_queue = self._job_queues[worker_id]
        with self._dispatch_cv:
            with self._lock:
                self._job_queues[worker_id] = new_queue
                self._retired_result_queues.append(
                    self._result_queues[worker_id]
                )
                self._result_queues[worker_id] = new_result_queue
                self._processes[worker_id] = process
                worker.state = WORKER_RUNNING
                worker.alive = True
            self._dispatch_cv.notify_all()
        self.stats._restarted(worker_id)
        self.journal.log(
            "restart",
            worker_id=worker_id,
            restarts=self.stats.workers[worker_id].restarts,
        )
        with self._admission:
            self._admission.notify_all()  # blocked producers can route again
        try:
            old_queue.close()
            old_queue.cancel_join_thread()
        except Exception:
            pass
        return True

    def _give_up_worker(self, worker_id: int) -> None:
        """Turn a crash-looping worker permanent-failed (restart budget out).

        Jobs still parked on it are rerouted if any worker is alive or
        another restart is pending; otherwise they fail with a
        :class:`~repro.errors.JobFailed` carrying their history.
        """
        now = time.perf_counter()
        failures: List[Tuple[_PendingJob, Exception]] = []
        with self._dispatch_cv:
            with self._lock:
                worker = self.stats.workers[worker_id]
                if worker.state != WORKER_DEAD:
                    return
                worker.state = WORKER_FAILED
                held = sorted(
                    (
                        (job_id, job)
                        for job_id, job in self._pending.items()
                        if job.worker_id == worker_id
                    ),
                    reverse=True,
                )
                for job_id, _ in held:
                    del self._pending[job_id]
                self._backlogs[worker_id].clear()
                for job_id, job in held:
                    try:
                        target = self._fallback_target_locked(worker_id)
                    except ReproError:
                        target = None
                    if target is None or target == worker_id:
                        job.attempts.append(
                            JobAttempt(
                                worker_id,
                                "worker restart budget exhausted",
                                now - job.submitted_s,
                            )
                        )
                        failures.append(
                            (
                                job,
                                JobFailed(
                                    f"cluster worker {worker_id} permanently "
                                    "failed (restart budget exhausted)",
                                    tuple(job.attempts),
                                ),
                            )
                        )
                        continue
                    job.worker_id = target
                    job.dispatched = False
                    self._pending[job_id] = job
                    self._backlogs[target].appendleft(job.message(job_id))
                    self.stats._requeued(worker_id, target, retried=False)
            self._dispatch_cv.notify_all()
        self.journal.log(
            "worker_failed", worker_id=worker_id, failed=len(failures)
        )
        for job, error in failures:
            self.stats._failed(worker_id)
            self._release_job_resources(job, crashed=True)
            self._release_admission()
            job.future.set_exception(error)
        with self._admission:
            self._admission.notify_all()

    def _expire_deadlines(self) -> None:
        """Fail queued (undispatched) jobs whose deadline has passed.

        Dispatched jobs are left alone — releasing a ring slot a live
        worker may still be reading would race; their deadline is enforced
        at requeue time if the worker dies, or simply when the (late)
        result arrives.
        """
        now = time.perf_counter()
        expired: List[Tuple[int, _PendingJob]] = []
        with self._dispatch_cv:
            with self._lock:
                for job_id, job in list(self._pending.items()):
                    if job.deadline is None or job.dispatched or now <= job.deadline:
                        continue
                    backlog = self._backlogs[job.worker_id]
                    for message in backlog:
                        if message[0] == job_id:
                            backlog.remove(message)
                            break
                    else:
                        continue  # mid-dispatch; the next pass settles it
                    del self._pending[job_id]
                    expired.append((job_id, job))
        for job_id, job in expired:
            job.attempts.append(
                JobAttempt(
                    job.worker_id,
                    "deadline expired before dispatch",
                    now - job.submitted_s,
                )
            )
            self.journal.log("expired", worker_id=job.worker_id, job=job_id)
            self.stats._failed(job.worker_id)
            self._release_job_resources(job)
            self._release_admission()
            job.future.set_exception(
                JobFailed(
                    "frame deadline expired before dispatch", tuple(job.attempts)
                )
            )

    def _grow_pool(self) -> bool:
        """Add one worker (reusing a retired slot first); elasticity hook."""
        if self._closed or self._closing:
            return False
        with self._lock:
            slot_id = next(
                (
                    worker.worker_id
                    for worker in self.stats.workers
                    if worker.state == WORKER_RETIRED
                ),
                None,
            )
            appending = slot_id is None
            if appending:
                if len(self.stats.workers) >= self._worker_capacity:
                    return False
                slot_id = len(self.stats.workers)
        queue = self._context.Queue()
        result_queue = self._context.Queue()
        self._heartbeats[slot_id] = 0.0
        try:
            process = self._start_worker_process(slot_id, queue, result_queue)
        except Exception:
            for failed_queue in (queue, result_queue):
                failed_queue.close()
                failed_queue.cancel_join_thread()
            return False
        with self._dispatch_cv:
            with self._lock:
                if appending:
                    self.stats._add_worker()
                    self._job_queues.append(queue)
                    self._result_queues.append(result_queue)
                    self._processes.append(process)
                    self._backlogs.append(deque())
                    self._dispatched.append(0)
                else:
                    self._job_queues[slot_id] = queue
                    self._retired_result_queues.append(
                        self._result_queues[slot_id]
                    )
                    self._result_queues[slot_id] = result_queue
                    self._processes[slot_id] = process
                worker = self.stats.workers[slot_id]
                worker.state = WORKER_RUNNING
                worker.alive = True
            self._dispatch_cv.notify_all()
        self.stats._pool_grew()
        self.journal.log("pool_grow", worker_id=slot_id, pool=self.pool_size)
        with self._admission:
            self._admission.notify_all()
        return True

    def _retire_worker(self, worker_id: int) -> bool:
        """Drain one idle worker out of the pool; elasticity hook."""
        if self.elasticity is None or self._closed or self._closing:
            return False
        with self._dispatch_cv:
            with self._lock:
                worker = self.stats.workers[worker_id]
                if worker.state != WORKER_RUNNING:
                    return False
                if self._backlogs[worker_id] or self._dispatched[worker_id] > 0:
                    return False
                alive = sum(1 for entry in self.stats.workers if entry.alive)
                if alive <= self.elasticity.min_workers:
                    return False
                worker.state = WORKER_RETIRING
                worker.alive = False
        try:
            self._job_queues[worker_id].put(SHUTDOWN)
        except Exception:
            pass  # its exit is observed by _check_worker_health either way
        return True

    def _finish_retire(self, worker_id: int) -> None:
        process = self._processes[worker_id]
        process.join(timeout=5.0)
        with self._lock:
            worker = self.stats.workers[worker_id]
            if worker.state != WORKER_RETIRING:
                return
            worker.state = WORKER_RETIRED
        self.stats._pool_shrank()
        self.journal.log("pool_shrink", worker_id=worker_id, pool=self.pool_size)

    # -- lifecycle ---------------------------------------------------------
    def close(self, drain_timeout_s: float = 30.0) -> None:
        """Gracefully drain in-flight frames and tear the cluster down.

        Idempotent and crash-safe: a second call returns immediately, a
        worker that died mid-drain neither hangs the drain nor races the
        shared-memory unlink (every process is joined before the ring and
        cache are released), and any transport slot a crash left leased is
        force-reclaimed and counted in ``ClusterStats.leaked_slots``.
        """
        with self._close_lock:
            if self._closed or self._closing:
                return
            self._closing = True
            self._draining = True
        for timer in self._stall_timers:
            timer.cancel()
        for process in self._processes:
            if process.exitcode is None and process.pid is not None:
                try:
                    os.kill(process.pid, signal.SIGCONT)  # undo chaos stalls
                except (ProcessLookupError, OSError):
                    pass
        deadline = time.perf_counter() + drain_timeout_s
        while time.perf_counter() < deadline:
            with self._lock:
                drained = not self._pending
            if drained:
                break
            if not any(worker.alive for worker in self.stats.workers):
                if not self._recovery_possible():
                    break
            time.sleep(_HEALTH_POLL_S)
        if self._supervisor is not None:
            self._supervisor.stop()
        with self._admission:
            self._closed = True
            self._admission.notify_all()  # blocked producers raise, not hang
        with self._dispatch_cv:
            self._dispatcher_stop = True
            self._dispatch_cv.notify_all()
        self._dispatcher.join(timeout=5.0)
        for worker_id, worker in enumerate(self.stats.workers):
            if worker.alive:
                try:
                    self._job_queues[worker_id].put(SHUTDOWN)
                except (ValueError, OSError):
                    pass
        with self._lock:
            leftovers = list(self._pending.items())
            self._pending.clear()
        for job_id, job in leftovers:
            self.stats._failed(job.worker_id)
            self._release_job_resources(job, crashed=True)
            self._release_admission()
            job.future.set_exception(
                ReproError("ClusterServer closed before the frame was served")
            )
        for process in self._processes:
            try:
                process.join(timeout=5.0)
                if process.exitcode is None:
                    process.terminate()
                    process.join(timeout=5.0)
            except Exception:
                pass
        self._collector.join(timeout=5.0)
        all_queues = (
            self._job_queues + self._result_queues + self._retired_result_queues
        )
        for any_queue in all_queues:
            try:
                any_queue.close()
                any_queue.cancel_join_thread()
            except Exception:
                pass
        # leak audit: with every job released and every worker joined,
        # anything still leased was leaked by a crash path — reclaim it
        # and make it visible before the shared memory goes away
        leaked = self._ring.in_flight()
        if self._pyramid_cache is not None:
            leaked += self._pyramid_cache.reclaim_leaked()
        if self._result_ring is not None:
            # every crash already reclaimed its range synchronously, so a
            # slot still claimed here lost its descriptor without a crash
            # — a genuine leak
            leaked += self._result_ring.in_use()
        if leaked:
            self.stats._leaked(leaked)
            self.journal.log("leak_reclaim", count=leaked, at="close")
        self._ring.close()
        if self._result_ring is not None:
            self._result_ring.close()
        if self._pyramid_cache is not None:
            self._pyramid_cache.close()

    def __enter__(self) -> "ClusterServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
