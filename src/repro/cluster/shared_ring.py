"""Shared-memory frame transport for the process-sharded serving layer.

The hardware front-end of the paper never copies a frame between pipeline
stages: pixels stream once from SDRAM through line-buffer FIFOs.  The
process cluster gets the same property from a :class:`SharedFrameRing` — a
single ``multiprocessing.shared_memory`` block divided into fixed-size
slots.  The producer writes a frame's pixels into a free slot (one memcpy
out of the producer's heap), hands the *slot index* to a worker through a
tiny control message, and the worker maps a zero-copy numpy view over the
same physical pages.  No pixel data is ever pickled or pushed through a
pipe.

Slot lifecycle mirrors the hardware FIFO's back-pressure: ``acquire()``
blocks while every slot is in flight, and a slot only returns to the free
pool after the worker's result has been collected (the worker is guaranteed
to have finished reading by then, because extraction results never
reference the input pixels).  The free pool is guarded by a condition
variable, so a producer parked on a full ring wakes the moment a slot is
released (microseconds), not on the next poll tick.

When the cluster's ``shared`` pyramid provider is active the ring is only
the **fallback** transport: frames whose pyramid publish succeeds travel as
a bare job id and the ring slot (and its memcpy) is skipped entirely — see
``docs/pyramid.md`` for the zero-copy data flow.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from multiprocessing import shared_memory
from typing import Optional, Tuple

import numpy as np

from ..errors import ReproError


class SharedFrameRing:
    """Owner side of the shared-memory frame slots (producer process).

    Parameters
    ----------
    num_slots:
        Number of frames that can be in flight simultaneously; this is the
        cluster's back-pressure bound.
    slot_bytes:
        Capacity of one slot in bytes (``height * width`` of the largest
        frame the ring must carry).
    """

    def __init__(self, num_slots: int, slot_bytes: int) -> None:
        if num_slots <= 0:
            raise ReproError("num_slots must be positive")
        if slot_bytes <= 0:
            raise ReproError("slot_bytes must be positive")
        self.num_slots = num_slots
        self.slot_bytes = slot_bytes
        self._shm = shared_memory.SharedMemory(
            create=True, size=num_slots * slot_bytes
        )
        self._free: deque[int] = deque(range(num_slots))
        # one condition variable guards the free pool: release() notifies,
        # so a blocked acquire() wakes immediately instead of polling
        self._cv = threading.Condition()
        self._closed = False

    @property
    def name(self) -> str:
        """System-wide name workers use to attach to the same pages."""
        return self._shm.name

    # -- producer side ----------------------------------------------------
    def acquire(self, timeout: Optional[float] = None) -> Optional[int]:
        """Reserve a free slot index; ``None`` on timeout (back-pressure).

        Blocks on the condition variable until a slot is released (wake-up
        latency is a notify, not a poll tick).  Raises when the ring is
        closed — including while waiting, so producers blocked across a
        teardown are released instead of timing out.
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._cv:
            while True:
                if self._closed:
                    raise ReproError("shared frame ring is closed")
                if self._free:
                    return self._free.popleft()
                if deadline is None:
                    self._cv.wait()
                else:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0.0 or not self._cv.wait(remaining):
                        return None

    def release(self, slot: int) -> None:
        """Return ``slot`` to the free pool once its frame is fully consumed."""
        if not 0 <= slot < self.num_slots:
            raise ReproError(f"slot {slot} outside ring of {self.num_slots} slots")
        with self._cv:
            if slot in self._free:
                raise ReproError(f"slot {slot} released twice")
            self._free.append(slot)
            self._cv.notify()

    def write(self, slot: int, pixels: np.ndarray) -> Tuple[int, int]:
        """Copy ``pixels`` (2-D uint8) into ``slot``; returns ``(height, width)``.

        This is the single copy of the transport: producer heap -> shared
        pages.  The consumer side reads the same pages with no further copy.
        """
        if pixels.ndim != 2 or pixels.dtype != np.uint8:
            raise ReproError("frame slots carry 2-D uint8 pixel arrays")
        height, width = pixels.shape
        if height * width > self.slot_bytes:
            raise ReproError(
                f"frame of {height}x{width} pixels exceeds the ring slot "
                f"capacity of {self.slot_bytes} bytes"
            )
        view = np.ndarray(
            (height, width),
            dtype=np.uint8,
            buffer=self._shm.buf,
            offset=slot * self.slot_bytes,
        )
        view[:] = pixels
        return height, width

    def in_flight(self) -> int:
        """Number of slots currently reserved (for stats / queue depth)."""
        with self._cv:
            return self.num_slots - len(self._free)

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release the shared block (owner unlinks; workers just detach)."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()  # waiters wake and raise instead of hanging
        try:
            self._shm.close()
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked (double close paths)
                pass

    def __enter__(self) -> "SharedFrameRing":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def attach_slot_view(
    shm: shared_memory.SharedMemory,
    slot: int,
    slot_bytes: int,
    height: int,
    width: int,
) -> np.ndarray:
    """Worker-side zero-copy view of one frame slot.

    The returned array aliases the shared pages directly; wrapping it in a
    :class:`~repro.image.GrayImage` does not copy (the view is C-contiguous
    uint8), so extraction reads the producer's bytes in place.
    """
    if height * width > slot_bytes:
        raise ReproError("slot view exceeds slot capacity")
    return np.ndarray(
        (height, width),
        dtype=np.uint8,
        buffer=shm.buf,
        offset=slot * slot_bytes,
    )
