"""Self-healing control plane for the process cluster.

The paper's FPGA datapath never dies; a production serving pool does.  This
module holds the two control-loop configurations and the supervisor thread
that keep a :class:`~repro.cluster.server.ClusterServer` serving through
worker crashes, stalls and load swings:

* **Supervision** (:class:`SupervisorConfig`) — watch every worker process
  (exit code + heartbeat), kill stalled workers, respawn dead ones with the
  same engine configuration under capped exponential backoff, and requeue
  their in-flight/backlog jobs through the router.  A job is retried at
  most ``max_retries`` times and only inside its optional per-job
  ``deadline_s``; past either budget it fails with a structured
  :class:`~repro.errors.JobFailed` carrying the full attempt history.
* **Elasticity** (:class:`ElasticityConfig`) — grow the pool toward
  ``max_workers`` while the aggregate queue runs deeper than
  ``grow_at_queue_depth`` frames per alive worker, and drain/retire
  workers that have sat idle for ``shrink_idle_s`` back down to
  ``min_workers``.  Shard policies already route against an ``alive`` load
  view, so membership changes need no routing changes at all.

The supervisor owns only the *decisions* (when to kill, respawn, grow,
shrink, expire); the *mechanics* (process spawning, job requeueing, slot
reclamation) live on the server so they share its locking discipline.
Failure semantics are documented in ``docs/serving.md``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (server imports us)
    from .server import ClusterServer

# re-exported here so cluster callers find the failure types next to the
# supervision configuration that produces them
from ..errors import JobAttempt, JobFailed  # noqa: F401

#: Worker lifecycle states tracked by :class:`~repro.cluster.WorkerStats`.
#: ``running`` serves; ``dead`` awaits a supervised restart; ``failed`` is
#: permanently gone (supervision off, or restart budget exhausted);
#: ``retiring``/``retired`` mark a graceful elastic drain.
WORKER_RUNNING = "running"
WORKER_DEAD = "dead"
WORKER_FAILED = "failed"
WORKER_RETIRING = "retiring"
WORKER_RETIRED = "retired"


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the worker supervision / retry loop.

    ``max_retries`` bounds how often one job may be requeued after worker
    deaths (the N+1-th death fails it with :class:`JobFailed`).
    ``heartbeat_timeout_s`` declares a worker *stalled* when it holds
    dispatched jobs but has not beaten for this long — it is then killed
    and restarted, and its jobs requeued, so the worst cost of a false
    positive (one genuinely slow frame) is a retry, never a wrong result.
    Restarts back off exponentially from ``restart_backoff_s`` doubling up
    to ``restart_backoff_max_s``; ``max_restarts`` (per worker, ``None`` =
    unlimited) turns a crash-looping worker into a permanent failure.
    """

    max_retries: int = 2
    heartbeat_timeout_s: float = 10.0
    restart_backoff_s: float = 0.1
    restart_backoff_max_s: float = 5.0
    max_restarts: Optional[int] = None
    interval_s: float = 0.02

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ReproError("max_retries must be non-negative")
        if self.heartbeat_timeout_s <= 0.0:
            raise ReproError("heartbeat_timeout_s must be positive")
        if self.restart_backoff_s <= 0.0 or self.restart_backoff_max_s <= 0.0:
            raise ReproError("restart backoff values must be positive")
        if self.max_restarts is not None and self.max_restarts < 0:
            raise ReproError("max_restarts must be non-negative or None")


@dataclass(frozen=True)
class ElasticityConfig:
    """Knobs of the pool-sizing control loop.

    The pool grows (one worker per control tick) while the cluster-wide
    queue depth exceeds ``grow_at_queue_depth`` frames per alive worker
    and fewer than ``max_workers`` are alive; an alive worker beyond
    ``min_workers`` whose queue has been empty for ``shrink_idle_s`` is
    drained and retired.  ``target_latency_ms`` optionally adds a latency
    trigger: grow when the mean alive EWMA latency exceeds the target
    while frames are queued.
    """

    min_workers: int = 1
    max_workers: int = 4
    grow_at_queue_depth: float = 2.0
    shrink_idle_s: float = 1.0
    target_latency_ms: Optional[float] = None
    interval_s: float = 0.02

    def __post_init__(self) -> None:
        if self.min_workers <= 0:
            raise ReproError("min_workers must be positive")
        if self.max_workers < self.min_workers:
            raise ReproError("max_workers must be >= min_workers")
        if self.grow_at_queue_depth <= 0.0:
            raise ReproError("grow_at_queue_depth must be positive")
        if self.shrink_idle_s <= 0.0:
            raise ReproError("shrink_idle_s must be positive")


class Supervisor:
    """Control-loop thread: health, restarts, deadlines and pool sizing.

    One supervisor runs per server whenever supervision and/or elasticity
    is configured.  Every tick it (1) folds observed worker exits into the
    server's death handler, (2) kills workers whose heartbeat has stalled
    while they hold dispatched jobs, (3) respawns dead workers whose
    backoff window has passed, (4) expires queued jobs past their
    deadline, and (5) grows/shrinks the pool.  Ticks never raise: a
    failing respawn simply reschedules with a doubled backoff.
    """

    def __init__(
        self,
        server: "ClusterServer",
        supervision: Optional[SupervisorConfig],
        elasticity: Optional[ElasticityConfig],
    ) -> None:
        self._server = server
        self.supervision = supervision
        self.elasticity = elasticity
        intervals = [
            config.interval_s for config in (supervision, elasticity) if config
        ]
        self._interval_s = min(intervals) if intervals else 0.05
        self._stop_event = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="cluster-supervisor", daemon=True
        )
        # per-worker restart schedule: next allowed respawn time + current
        # backoff (doubles per respawn, capped); cleared when a worker has
        # proven itself by surviving a full max-backoff window
        self._next_restart_at: Dict[int, float] = {}
        self._backoff_s: Dict[int, float] = {}
        self._respawned_at: Dict[int, float] = {}
        self._idle_since: Dict[int, float] = {}

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout_s: float = 5.0) -> None:
        self._stop_event.set()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout_s)

    def _run(self) -> None:
        while not self._stop_event.wait(self._interval_s):
            try:
                self.tick()
            except Exception:
                # the control loop must outlive any single bad tick; the
                # next tick re-observes the same state and retries
                continue

    # -- one control tick --------------------------------------------------
    def tick(self) -> None:
        """One pass of every control loop (also callable from tests)."""
        server = self._server
        server._check_worker_health()
        if self.supervision is not None:
            self._kill_stalled_workers()
            self._respawn_dead_workers()
            server._expire_deadlines()
        if self.elasticity is not None:
            self._scale_pool()

    # -- supervision -------------------------------------------------------
    def _kill_stalled_workers(self) -> None:
        assert self.supervision is not None
        now = time.monotonic()
        for worker in list(self._server.stats.workers):
            worker_id = worker.worker_id
            if worker.state != WORKER_RUNNING:
                continue
            if self._server._dispatched_count(worker_id) <= 0:
                continue  # an idle worker parked on its queue cannot stall
            beat = self._server._last_heartbeat(worker_id)
            if beat <= 0.0:
                continue  # not booted yet; spin-up is covered by exit codes
            if now - beat > self.supervision.heartbeat_timeout_s:
                self._server._kill_stalled_worker(
                    worker_id, stalled_for_s=now - beat
                )

    def _respawn_dead_workers(self) -> None:
        assert self.supervision is not None
        config = self.supervision
        now = time.monotonic()
        for worker in list(self._server.stats.workers):
            worker_id = worker.worker_id
            if worker.state != WORKER_DEAD:
                continue
            if (
                config.max_restarts is not None
                and worker.restarts >= config.max_restarts
            ):
                self._server._give_up_worker(worker_id)
                self._forget_schedule(worker_id)
                continue
            if worker_id not in self._next_restart_at:
                # first death restarts immediately; the backoff only paces
                # *repeated* deaths of the same worker slot
                survived = now - self._respawned_at.get(worker_id, 0.0)
                if survived > 2.0 * config.restart_backoff_max_s:
                    self._backoff_s.pop(worker_id, None)  # proven stable
                self._next_restart_at[worker_id] = now
            if now < self._next_restart_at[worker_id]:
                continue
            backoff = self._backoff_s.get(worker_id, config.restart_backoff_s)
            if self._server._respawn_worker(worker_id):
                self._respawned_at[worker_id] = time.monotonic()
                self._backoff_s[worker_id] = min(
                    2.0 * backoff, config.restart_backoff_max_s
                )
                del self._next_restart_at[worker_id]
            else:
                # spawn failed (or the server is closing): try again after
                # the capped backoff instead of spinning
                self._next_restart_at[worker_id] = now + backoff
                self._backoff_s[worker_id] = min(
                    2.0 * backoff, config.restart_backoff_max_s
                )
                self._server.journal.log(
                    "restart_backoff",
                    worker_id=worker_id,
                    backoff_s=round(backoff, 3),
                )

    def _forget_schedule(self, worker_id: int) -> None:
        self._next_restart_at.pop(worker_id, None)
        self._backoff_s.pop(worker_id, None)

    # -- elasticity --------------------------------------------------------
    def _scale_pool(self) -> None:
        assert self.elasticity is not None
        config = self.elasticity
        stats = self._server.stats
        alive = [worker for worker in stats.workers if worker.alive]
        if not alive:
            return  # restarts (supervision) own the empty-pool case
        queue_depth = stats.queue_depth
        should_grow = queue_depth > config.grow_at_queue_depth * len(alive)
        if config.target_latency_ms is not None and queue_depth > len(alive):
            mean_ewma_ms = 1000.0 * sum(
                worker.ewma_latency_s for worker in alive
            ) / len(alive)
            should_grow = should_grow or mean_ewma_ms > config.target_latency_ms
        if should_grow and len(alive) < config.max_workers:
            self._server._grow_pool()
            return  # one membership change per tick keeps the loop stable
        if len(alive) <= config.min_workers:
            self._idle_since.clear()
            return
        now = time.monotonic()
        for worker in alive:
            if worker.queue_depth == 0 and self._server._worker_is_idle(
                worker.worker_id
            ):
                idle_since = self._idle_since.setdefault(worker.worker_id, now)
                if now - idle_since >= config.shrink_idle_s:
                    if self._server._retire_worker(worker.worker_id):
                        self._idle_since.pop(worker.worker_id, None)
                        return  # one retirement per tick
            else:
                self._idle_since.pop(worker.worker_id, None)
