"""Shard routing policies for the cluster server.

A policy decides which worker (shard) serves a submitted frame.  Policies
follow the same name → class registry idiom as the detection engines and
keypoint backends (:mod:`repro.registry`), so configuration stays a plain
string and unknown names report the registered alternatives.

* ``round_robin`` — spread frames evenly across workers.  Best for a single
  stream of independent frames of uniform cost (throughput-oriented
  serving).
* ``by_sequence`` — pin every frame carrying the same ``shard_key`` to one
  worker.  Best for multi-tenant serving where each client's frames should
  ride one engine (per-sequence cache locality, deterministic placement).
* ``least_loaded`` — route each frame to the alive worker with the
  shallowest queue, breaking ties on the lower EWMA extraction latency.
  Best when per-frame cost is skewed: a static cycle can stack every
  expensive frame on one worker while the others idle, whereas the load
  view keeps queue depths level.

The server feeds policies a **live load view**: one :class:`WorkerLoad`
snapshot per worker (queue depth, EWMA latency, liveness) taken from
:class:`~repro.cluster.server.ClusterStats` at routing time.  Policies that
do not care (``round_robin``, ``by_sequence``) simply ignore it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, List, Optional, Sequence

from ..errors import ReproError
from ..registry import ClassRegistry


@dataclass(frozen=True)
class WorkerLoad:
    """One worker's load at routing time, snapshotted by the server.

    ``queue_depth`` counts frames routed to the worker but not yet
    completed (backlog + dispatched); ``ewma_latency_s`` is the worker's
    exponentially-weighted recent extraction latency (0.0 before its first
    completion); ``alive`` is False once the worker process has died.
    """

    worker_id: int
    queue_depth: int
    ewma_latency_s: float
    alive: bool


class ShardPolicy(ABC):
    """Maps a submission to the worker index that will serve it."""

    name: ClassVar[str] = "abstract"

    @abstractmethod
    def route(
        self,
        job_index: int,
        shard_key: Optional[int],
        num_workers: int,
        loads: Optional[Sequence[WorkerLoad]] = None,
    ) -> int:
        """Return the worker index in ``[0, num_workers)`` for one frame.

        ``job_index`` is the global submission counter; ``shard_key`` is the
        caller-supplied affinity key (may be ``None``); ``loads`` is the
        live per-worker load view (one :class:`WorkerLoad` per worker, in
        worker order) when the caller has one, else ``None``.
        """


_POLICIES: ClassRegistry[ShardPolicy] = ClassRegistry("shard policy")
register_policy = _POLICIES.register


def create_policy(name: str) -> ShardPolicy:
    """Instantiate the shard policy registered under ``name``."""
    return _POLICIES.create(name)


def available_policies() -> List[str]:
    """Registered policy names, sorted."""
    return _POLICIES.names()


def route_to_alive(loads: Sequence[WorkerLoad]) -> Optional[int]:
    """Least-loaded alive worker from a load view, or ``None`` if all dead.

    The supervised server uses this as the rerouting fallback whenever a
    policy's first choice is a dead (or restarting) worker: requeued and
    rerouted frames land on the shallowest alive queue, with the same
    EWMA-latency / worker-id tie-breaks as :class:`LeastLoadedPolicy`.
    """
    alive = [load for load in loads if load.alive]
    if not alive:
        return None
    best = min(
        alive, key=lambda load: (load.queue_depth, load.ewma_latency_s, load.worker_id)
    )
    return best.worker_id


@register_policy("round_robin")
class RoundRobinPolicy(ShardPolicy):
    """Cycle submissions across workers; ignores the shard key and load."""

    def route(
        self,
        job_index: int,
        shard_key: Optional[int],
        num_workers: int,
        loads: Optional[Sequence[WorkerLoad]] = None,
    ) -> int:
        return job_index % num_workers


@register_policy("by_sequence")
class BySequencePolicy(ShardPolicy):
    """Pin all frames of one shard key (e.g. one sequence) to one worker."""

    def route(
        self,
        job_index: int,
        shard_key: Optional[int],
        num_workers: int,
        loads: Optional[Sequence[WorkerLoad]] = None,
    ) -> int:
        if shard_key is None:
            raise ReproError(
                "the by_sequence shard policy requires submit(..., shard_key=...)"
            )
        return int(shard_key) % num_workers


@register_policy("least_loaded")
class LeastLoadedPolicy(ShardPolicy):
    """Route to the alive worker with the shallowest queue.

    Ties break on the lower EWMA latency (a worker that has been finishing
    frames faster absorbs the next one), then on the lower worker index for
    determinism.  Without a load view (standalone use) the policy degrades
    to round-robin; with a load view but no alive worker it raises, exactly
    like the server's own liveness check.
    """

    def route(
        self,
        job_index: int,
        shard_key: Optional[int],
        num_workers: int,
        loads: Optional[Sequence[WorkerLoad]] = None,
    ) -> int:
        if not loads:
            return job_index % num_workers
        alive = [load for load in loads[:num_workers] if load.alive]
        if not alive:
            raise ReproError("least_loaded found no alive worker to route to")
        best = min(
            alive, key=lambda load: (load.queue_depth, load.ewma_latency_s, load.worker_id)
        )
        return best.worker_id
