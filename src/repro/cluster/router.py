"""Shard routing policies for the cluster server.

A policy decides which worker (shard) serves a submitted frame.  Policies
follow the same name → class registry idiom as the detection engines and
keypoint backends (:mod:`repro.registry`), so configuration stays a plain
string and unknown names report the registered alternatives.

* ``round_robin`` — spread frames evenly across workers.  Best for a single
  stream of independent frames (throughput-oriented serving).
* ``by_sequence`` — pin every frame carrying the same ``shard_key`` to one
  worker.  Best for multi-tenant serving where each client's frames should
  ride one engine (per-sequence cache locality, deterministic placement).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, List, Optional

from ..errors import ReproError
from ..registry import ClassRegistry


class ShardPolicy(ABC):
    """Maps a submission to the worker index that will serve it."""

    name: ClassVar[str] = "abstract"

    @abstractmethod
    def route(self, job_index: int, shard_key: Optional[int], num_workers: int) -> int:
        """Return the worker index in ``[0, num_workers)`` for one frame.

        ``job_index`` is the global submission counter; ``shard_key`` is the
        caller-supplied affinity key (may be ``None``).
        """


_POLICIES: ClassRegistry[ShardPolicy] = ClassRegistry("shard policy")
register_policy = _POLICIES.register


def create_policy(name: str) -> ShardPolicy:
    """Instantiate the shard policy registered under ``name``."""
    return _POLICIES.create(name)


def available_policies() -> List[str]:
    """Registered policy names, sorted."""
    return _POLICIES.names()


@register_policy("round_robin")
class RoundRobinPolicy(ShardPolicy):
    """Cycle submissions across workers; ignores the shard key."""

    def route(self, job_index: int, shard_key: Optional[int], num_workers: int) -> int:
        return job_index % num_workers


@register_policy("by_sequence")
class BySequencePolicy(ShardPolicy):
    """Pin all frames of one shard key (e.g. one sequence) to one worker."""

    def route(self, job_index: int, shard_key: Optional[int], num_workers: int) -> int:
        if shard_key is None:
            raise ReproError(
                "the by_sequence shard policy requires submit(..., shard_key=...)"
            )
        return int(shard_key) % num_workers
