"""Worker-process entry point of the cluster serving layer.

Each worker owns ONE engine/backend pair — exactly like one fixed-function
extraction pipeline of the paper's accelerator — built inside the worker
process from the pickled :class:`~repro.config.ExtractorConfig`, so engines
in different workers share nothing and the GIL of one process never stalls
another.  Frames arrive as ``(job_id, slot, height, width)`` control
messages; pixels are read through a zero-copy view of the shared-memory
ring (:mod:`repro.cluster.shared_ring`), and only the small extraction
results (retained features + profile) travel back through the result queue.

Two cross-process optimisations live here:

* **shared pyramid attachment** — when the server runs the ``shared``
  pyramid provider it passes a :class:`~repro.pyramid.PyramidCacheHandle`;
  the worker's extractor then attaches zero-copy to the pyramid the
  producer already built for each job id and only rebuilds locally on a
  cache miss (``docs/pyramid.md``);
* **batched result transport** — results are buffered per worker and
  flushed as ONE queue put when the batch fills or the job queue runs dry,
  cutting pipe syscalls at high frame rates without delaying results while
  the worker is idle.  Semantics and per-frame stats are unchanged; the
  server iterates the batch.

The function lives at module scope so both ``fork`` and ``spawn`` start
methods can target it.
"""

from __future__ import annotations

import queue as queue_module
import time
from multiprocessing import shared_memory

#: Control message closing a worker's job queue (graceful drain).
SHUTDOWN = None

#: Results buffered per worker before a flush is forced.  The buffer also
#: flushes whenever the job queue is momentarily empty, so batching only
#: coalesces puts while the worker is saturated and never adds idle latency.
RESULT_BATCH_MAX = 8


def worker_main(
    worker_id: int,
    config,
    ring_name: str,
    slot_bytes: int,
    job_queue,
    result_queue,
    pyramid_handle=None,
) -> None:
    """Consume frame jobs until the shutdown sentinel arrives.

    Result messages are ``(worker_id, batch)`` where ``batch`` is a list of
    ``(job_id, result, latency_s, error)`` entries (exactly one of
    ``result`` / ``error`` set per entry).  The slot index is not echoed
    back: the server tracks the slot per job and frees it when the result
    (or failure) is collected, which guarantees the worker has finished
    reading the shared pages before they are reused.
    """
    # Imports happen inside the worker so the ``spawn`` start method pays
    # them here rather than pickling live engine objects.
    from ..features import OrbExtractor
    from ..image import GrayImage
    from ..pyramid import SharedPyramidCache
    from .shared_ring import attach_slot_view

    # Attaching re-registers the segment with the resource tracker the
    # worker shares with the server process; that is a set-membership no-op,
    # and the server's unlink() is the single cleanup point.
    shm = shared_memory.SharedMemory(name=ring_name)
    pyramid_cache = (
        SharedPyramidCache.attach_handle(pyramid_handle)
        if pyramid_handle is not None
        else None
    )
    pending = []

    def flush() -> None:
        if pending:
            result_queue.put((worker_id, list(pending)))
            pending.clear()

    try:
        extractor = OrbExtractor(config, pyramid_cache=pyramid_cache)
        while True:
            if pending:
                # drain without blocking while results are buffered; a dry
                # queue flushes them before we park on the blocking get
                try:
                    message = job_queue.get_nowait()
                except queue_module.Empty:
                    flush()
                    message = job_queue.get()
            else:
                message = job_queue.get()
            if message is SHUTDOWN:
                flush()
                break
            job_id, slot, height, width = message
            start = time.perf_counter()
            try:
                pixels = attach_slot_view(shm, slot, slot_bytes, height, width)
                result = extractor.extract(GrayImage(pixels), frame_id=job_id)
                latency = time.perf_counter() - start
                pending.append((job_id, result, latency, None))
            except Exception as error:  # surface, don't kill the worker
                latency = time.perf_counter() - start
                pending.append((job_id, None, latency, repr(error)))
            if len(pending) >= RESULT_BATCH_MAX:
                flush()
    finally:
        if pyramid_cache is not None:
            pyramid_cache.close()
        shm.close()
