"""Worker-process entry point of the cluster serving layer.

Each worker owns ONE engine/backend pair — exactly like one fixed-function
extraction pipeline of the paper's accelerator — built inside the worker
process from the pickled :class:`~repro.config.ExtractorConfig`, so engines
in different workers share nothing and the GIL of one process never stalls
another.  Frames arrive as ``(job_id, slot, height, width)`` control
messages; pixels are read through a zero-copy view of the shared-memory
ring (:mod:`repro.cluster.shared_ring`), and only the small extraction
result (retained features + profile) travels back through the result queue.

The function lives at module scope so both ``fork`` and ``spawn`` start
methods can target it.
"""

from __future__ import annotations

import time
from multiprocessing import shared_memory

#: Control message closing a worker's job queue (graceful drain).
SHUTDOWN = None


def worker_main(
    worker_id: int,
    config,
    ring_name: str,
    slot_bytes: int,
    job_queue,
    result_queue,
) -> None:
    """Consume frame jobs until the shutdown sentinel arrives.

    Result messages are ``(worker_id, job_id, result, latency_s, error)``
    where exactly one of ``result`` / ``error`` is set.  The slot index is
    not echoed back: the server tracks the slot per job and frees it when
    the result (or failure) is collected, which guarantees the worker has
    finished reading the shared pages before they are reused.
    """
    # Imports happen inside the worker so the ``spawn`` start method pays
    # them here rather than pickling live engine objects.
    from ..features import OrbExtractor
    from ..image import GrayImage
    from .shared_ring import attach_slot_view

    # Attaching re-registers the segment with the resource tracker the
    # worker shares with the server process; that is a set-membership no-op,
    # and the server's unlink() is the single cleanup point.
    shm = shared_memory.SharedMemory(name=ring_name)
    try:
        extractor = OrbExtractor(config)
        while True:
            message = job_queue.get()
            if message is SHUTDOWN:
                break
            job_id, slot, height, width = message
            start = time.perf_counter()
            try:
                pixels = attach_slot_view(shm, slot, slot_bytes, height, width)
                result = extractor.extract(GrayImage(pixels))
                latency = time.perf_counter() - start
                result_queue.put((worker_id, job_id, result, latency, None))
            except Exception as error:  # surface, don't kill the worker
                latency = time.perf_counter() - start
                result_queue.put((worker_id, job_id, None, latency, repr(error)))
    finally:
        shm.close()
