"""Worker-process entry point of the cluster serving layer.

Each worker owns ONE engine/backend pair — exactly like one fixed-function
extraction pipeline of the paper's accelerator — built inside the worker
process from the pickled :class:`~repro.config.ExtractorConfig`, so engines
in different workers share nothing and the GIL of one process never stalls
another.  Frames arrive as ``(job_id, key, slot, height, width)`` control
messages; ``key`` is the frame's pyramid-cache key (the caller-supplied
frame id, or the job id when none was given).

Two transports feed a worker, decided per frame by the producer:

* **ring transport** (``slot`` is an index) — pixels are read through a
  zero-copy view of the shared-memory ring
  (:mod:`repro.cluster.shared_ring`); the only transport when the pyramid
  provider is local, the fallback when a shared-cache publish fails;
* **zero-copy fast path** (``slot`` is ``None``) — the producer already
  published the frame's whole pyramid (level 0 included) into the
  :class:`~repro.pyramid.SharedPyramidCache` and pinned it, so the worker
  attaches the cached pyramid by ``key`` and extracts straight from the
  shared pages — **no frame bytes were copied into the ring at all**
  (``docs/pyramid.md``).

Results leave the worker through two transports, decided per result:

* **result ring** (default) — the worker packs the result's flat arrays
  straight into its own range of the
  :class:`~repro.cluster.result_ring.SharedResultRing`
  (:mod:`repro.serving.resultpack` layout) and the batch entry carries only
  a tiny :class:`~repro.cluster.result_ring.RingSlotRef`;
* **pickle fallback** — when no ring is configured, the worker's range is
  momentarily exhausted, or a result outgrows its slot, the
  :class:`~repro.features.ExtractionResult` itself rides the queue exactly
  as before the ring existed.

Either way batch entries are buffered per worker and flushed as ONE queue
put when the batch fills (``result_batch`` entries, a
:class:`~repro.cluster.server.ClusterServer` knob) or the job queue runs
dry, cutting pipe syscalls at high frame rates without delaying results
while the worker is idle.

Robustness plumbing (``docs/serving.md`` → Failure semantics): workers
ignore ``SIGINT`` so a Ctrl-C aimed at the parent never kills the pool out
from under a graceful ``close()``, and each worker stamps a monotonic
**heartbeat** into a shared array between jobs (and every
:data:`HEARTBEAT_INTERVAL_S` while parked on an empty queue), which is what
lets the supervisor distinguish a worker that is busy from one that is
stuck and must be killed and respawned.

The function lives at module scope so both ``fork`` and ``spawn`` start
methods can target it.
"""

from __future__ import annotations

import queue as queue_module
import signal
import time
from multiprocessing import shared_memory

#: Control message closing a worker's job queue (graceful drain).
SHUTDOWN = None

#: Default for ``ClusterServer(result_batch=)``: results buffered per worker
#: before a flush is forced.  The buffer also flushes whenever the job queue
#: is momentarily empty, so batching only coalesces puts while the worker is
#: saturated and never adds idle latency.
DEFAULT_RESULT_BATCH = 8

#: How often a parked worker refreshes its heartbeat while waiting for work.
HEARTBEAT_INTERVAL_S = 0.5


def worker_main(
    worker_id: int,
    config,
    ring_name: str,
    slot_bytes: int,
    job_queue,
    result_queue,
    pyramid_handle=None,
    heartbeat=None,
    result_ring_handle=None,
    result_batch: int = DEFAULT_RESULT_BATCH,
    trace_enabled: bool = False,
) -> None:
    """Consume frame jobs until the shutdown sentinel arrives.

    Result messages are ``(worker_id, batch, trace_blob)`` where ``batch``
    is a list of ``(job_id, payload, latency_s, error)`` entries (exactly
    one of ``payload`` / ``error`` set per entry).  ``payload`` is a
    :class:`~repro.cluster.result_ring.RingSlotRef` when the result was
    packed into the shared result ring, else the
    :class:`~repro.features.ExtractionResult` itself (pickle fallback).
    ``trace_blob`` is ``None`` unless ``trace_enabled``, in which case it
    is ``(worker_perf_counter_at_flush, drained_span_records)`` — the
    worker's span buffer rides every flush back to the server, which uses
    the clock stamp to calibrate this worker's ``perf_counter`` offset
    (:meth:`repro.telemetry.Trace.add_worker_spans`).  Because spans ride
    the *result queue*, a crashed worker's already-flushed spans survive:
    the server drains the dead queue before reclaiming anything.
    Neither the frame ring slot nor the cache pin is echoed back: the
    server tracks both per job and frees them when the result (or failure)
    is collected, which guarantees the worker has finished reading the
    shared pages before they are reused.

    ``heartbeat`` is an optional shared double array indexed by worker id;
    the worker stamps ``time.monotonic()`` into its slot between jobs so
    the supervisor's stall detector can tell a long extraction (beats
    between frames) from a wedged process (no beats at all).
    """
    # A Ctrl-C in an interactive parent delivers SIGINT to the whole
    # process group; the parent's close() handles the shutdown, so workers
    # must not die out from under it mid-drain.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    # Imports happen inside the worker so the ``spawn`` start method pays
    # them here rather than pickling live engine objects.
    from ..errors import ReproError
    from ..features import OrbExtractor
    from ..image import GrayImage
    from ..pyramid import SharedPyramidCache
    from ..serving.resultpack import pack_into
    from ..telemetry import Tracer, set_tracer
    from .result_ring import RingSlotRef, SharedResultRing
    from .shared_ring import attach_slot_view

    # Install the process-local tracer so the extractor's stage spans
    # (smooth/detect/describe) land in this worker's buffer without any
    # signature plumbing; disabled it is a guarded no-op everywhere.
    tracer = Tracer(enabled=trace_enabled, track=f"worker-{worker_id}")
    set_tracer(tracer)

    # Attaching re-registers the segment with the resource tracker the
    # worker shares with the server process; that is a set-membership no-op,
    # and the server's unlink() is the single cleanup point.
    shm = shared_memory.SharedMemory(name=ring_name)
    pyramid_cache = (
        SharedPyramidCache.attach_handle(pyramid_handle)
        if pyramid_handle is not None
        else None
    )
    result_ring = (
        SharedResultRing.attach(result_ring_handle)
        if result_ring_handle is not None
        else None
    )
    pending = []

    def pack_payload(result):
        """Pack one result into this worker's ring range, or fall back.

        The fallback (carry the result object itself, pickled by the
        queue) covers both an exhausted range — flushed descriptors the
        collector has not folded yet — and a result that outgrows its
        slot; correctness never depends on ring capacity.
        """
        if result_ring is None:
            return result
        slot = result_ring.try_claim(worker_id)
        if slot is None:
            return result
        try:
            nbytes = pack_into(result, result_ring.slot_view(slot))
        except ReproError:
            # no descriptor was ever enqueued for this slot, so the server
            # cannot be racing this flag word: un-claiming here is safe
            result_ring.free(slot)
            return result
        return RingSlotRef(slot, nbytes)

    def beat() -> None:
        if heartbeat is not None:
            heartbeat[worker_id] = time.monotonic()

    def trace_blob():
        """The drained span buffer + flush-time clock stamp (None if off)."""
        if not tracer.enabled:
            return None
        return (time.perf_counter(), tracer.drain())

    def flush() -> None:
        if pending:
            result_queue.put((worker_id, list(pending), trace_blob()))
            pending.clear()

    def get_blocking():
        """Blocking get that keeps the heartbeat fresh while parked."""
        while True:
            try:
                return job_queue.get(timeout=HEARTBEAT_INTERVAL_S)
            except queue_module.Empty:
                beat()

    try:
        extractor = OrbExtractor(config, pyramid_cache=pyramid_cache)
        beat()
        while True:
            try:
                if pending:
                    # drain without blocking while results are buffered; a
                    # dry queue flushes them before we park on the blocking
                    # get
                    try:
                        message = job_queue.get_nowait()
                    except queue_module.Empty:
                        flush()
                        message = get_blocking()
                else:
                    message = get_blocking()
            except (EOFError, OSError):
                return  # parent tore the queue down (close after crash)
            if message is SHUTDOWN:
                flush()
                if tracer.enabled and len(tracer):
                    # spans recorded since the last result flush (tail of a
                    # drain) ride out on an empty batch before we exit
                    result_queue.put((worker_id, [], trace_blob()))
                break
            beat()
            job_id, key, slot, height, width = message
            start = time.perf_counter()
            try:
                if slot is None:
                    # zero-copy fast path: the pyramid (level 0 included)
                    # already lives in the shared cache, pinned by the
                    # producer, so attach by key instead of reading the ring
                    with tracer.span("attach_pyramid", frame=key):
                        cached = pyramid_cache.attach(
                            key, expected_shape=(height, width)
                        )
                    if cached is None:
                        raise RuntimeError(
                            f"zero-copy pyramid for frame key {key} missing "
                            "from the shared cache"
                        )
                    try:
                        with tracer.span("extract", frame=key):
                            result = extractor.extract(
                                cached.level(0).image, frame_id=key, pyramid=cached
                            )
                    finally:
                        cached.close()
                else:
                    with tracer.span("ring_read", frame=key):
                        pixels = attach_slot_view(
                            shm, slot, slot_bytes, height, width
                        )
                    with tracer.span("extract", frame=key):
                        result = extractor.extract(GrayImage(pixels), frame_id=key)
                with tracer.span("pack", frame=key):
                    payload = pack_payload(result)
                latency = time.perf_counter() - start
                pending.append((job_id, payload, latency, None))
            except Exception as error:  # surface, don't kill the worker
                latency = time.perf_counter() - start
                pending.append((job_id, None, latency, repr(error)))
            tracer.complete("serve_frame", start, frame=key)
            beat()
            if len(pending) >= result_batch:
                flush()
    finally:
        if pyramid_cache is not None:
            pyramid_cache.close()
        if result_ring is not None:
            result_ring.close()
        shm.close()
