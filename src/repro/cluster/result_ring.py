"""Shared-memory result transport: the reverse-direction twin of the frame ring.

The inbound half of the cluster moves pixels zero-copy
(:class:`~repro.cluster.shared_ring.SharedFrameRing`,
:class:`~repro.pyramid.SharedPyramidCache`); this module gives the *return*
path the same discipline.  Workers pack each
:class:`~repro.features.ExtractionResult` straight into a shared-memory slot
(:mod:`repro.serving.resultpack` flat layout) and push only a tiny
:class:`RingSlotRef` descriptor through the result queue; the collector
rebuilds the result with one memcpy (or a zero-copy view) and frees the
slot.  The descriptor is ~100 bytes where the pickled result is tens of
kilobytes — the last copy-heavy hop in the serving path.

**Why there is no cross-process lock.**  PR 7.5 learned the hard way that a
``multiprocessing`` lock held by a SIGKILLed worker wedges every survivor
(that is why result queues are per-worker).  The ring therefore partitions
its slots into per-worker *ranges* and runs a strict single-writer protocol
per flag word:

* a worker claims slots **only inside its own range** (flag ``0 -> 1``) —
  no two processes ever race a claim;
* the server alone frees (flag ``1 -> 0``) — after it has copied the
  packed bytes out, or when it force-reclaims a crashed worker's range.

Aligned 8-byte flag writes are atomic on every platform we run on, and the
result queue itself provides the happens-before edge: the worker finishes
writing the slot *before* it enqueues the descriptor, and the server frees
the slot *after* it dequeues and unpacks, so neither side ever reads a
half-written slot.  A SIGKILL at any instant leaves at worst some flags
stuck at ``1``; the supervisor drains the dead worker's result queue (so
descriptors flushed before death still complete their futures) and then
:meth:`SharedResultRing.reclaim_range` sweeps the range for the respawn.
Slots still in use at ``close()`` are the crash residue and are audited
into ``ClusterStats.leaked_slots`` (zero in a healthy run, asserted by the
chaos tests).

A worker whose range is momentarily exhausted — or whose result packs
larger than a slot — simply falls back to pickling the result into the
batch entry, exactly the pre-ring transport.  The fallback is a per-result
decision, so correctness never depends on ring capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from ..errors import ReproError

#: Flag value of a free slot (only the server writes 1 -> 0).
_FREE = 0
#: Flag value of a claimed slot (only the owning worker writes 0 -> 1).
_IN_USE = 1


@dataclass(frozen=True)
class ResultRingHandle:
    """Picklable attachment info handed to workers at spawn."""

    name: str
    num_ranges: int
    slots_per_range: int
    slot_bytes: int


@dataclass(frozen=True)
class RingSlotRef:
    """Queue descriptor for one packed result: *which* slot, *how many* bytes.

    This is the entire per-result payload the pipe carries on the zero-copy
    path (the batch tuple adds job id, latency and the error field).
    """

    slot: int
    nbytes: int


class SharedResultRing:
    """Per-worker slot pools workers pack extraction results into.

    Layout: ``num_ranges * slots_per_range`` int64 claim flags, followed by
    the same number of fixed-size data slots.  Worker ``w`` owns flags
    ``[w * slots_per_range, (w + 1) * slots_per_range)`` and may claim only
    there; the server frees anywhere.  See the module docstring for the
    crash-safety argument.
    """

    def __init__(
        self,
        num_ranges: int,
        slots_per_range: int,
        slot_bytes: int,
        *,
        _attach: Optional[ResultRingHandle] = None,
    ) -> None:
        if _attach is None:
            if num_ranges <= 0 or slots_per_range <= 0:
                raise ReproError("result ring needs positive range dimensions")
            if slot_bytes <= 0:
                raise ReproError("slot_bytes must be positive")
        self.num_ranges = num_ranges
        self.slots_per_range = slots_per_range
        self.slot_bytes = slot_bytes
        self.num_slots = num_ranges * slots_per_range
        flags_bytes = self.num_slots * 8
        total = flags_bytes + self.num_slots * slot_bytes
        if _attach is None:
            self._shm = shared_memory.SharedMemory(create=True, size=total)
            self._owner = True
        else:
            self._shm = shared_memory.SharedMemory(name=_attach.name)
            self._owner = False
        self._flags = np.ndarray(
            (self.num_slots,), dtype=np.int64, buffer=self._shm.buf
        )
        if self._owner:
            self._flags[:] = _FREE
        self._data_offset = flags_bytes
        self._closed = False

    @classmethod
    def attach(cls, handle: ResultRingHandle) -> "SharedResultRing":
        """Worker-side view over the server's ring (no ownership)."""
        return cls(
            handle.num_ranges,
            handle.slots_per_range,
            handle.slot_bytes,
            _attach=handle,
        )

    def handle(self) -> ResultRingHandle:
        """Picklable attachment info for :meth:`attach`."""
        return ResultRingHandle(
            self._shm.name, self.num_ranges, self.slots_per_range, self.slot_bytes
        )

    # -- worker side (single writer per range) ------------------------------
    def try_claim(self, range_id: int) -> Optional[int]:
        """Claim one free slot in ``range_id``'s own range, or ``None``.

        Non-blocking by design: a ``None`` means the worker's flushed
        results have not been collected yet, and the caller falls back to
        the pickle transport rather than waiting on the server.
        """
        if not 0 <= range_id < self.num_ranges:
            raise ReproError(
                f"range {range_id} outside ring of {self.num_ranges} ranges"
            )
        base = range_id * self.slots_per_range
        for slot in range(base, base + self.slots_per_range):
            if self._flags[slot] == _FREE:
                self._flags[slot] = _IN_USE
                return slot
        return None

    def slot_view(self, slot: int) -> np.ndarray:
        """Writable uint8 view of one slot's data bytes (zero-copy)."""
        if not 0 <= slot < self.num_slots:
            raise ReproError(f"slot {slot} outside ring of {self.num_slots} slots")
        return np.ndarray(
            (self.slot_bytes,),
            dtype=np.uint8,
            buffer=self._shm.buf,
            offset=self._data_offset + slot * self.slot_bytes,
        )

    # -- server side --------------------------------------------------------
    def free(self, slot: int) -> None:
        """Return one slot to its range after the descriptor was consumed."""
        if not 0 <= slot < self.num_slots:
            raise ReproError(f"slot {slot} outside ring of {self.num_slots} slots")
        self._flags[slot] = _FREE

    def reclaim_range(self, range_id: int) -> int:
        """Force-free every slot of a (dead) worker's range; returns count.

        Call only after the dead worker's result queue has been drained:
        a descriptor folded after its slot is reclaimed could read bytes a
        respawned worker is already overwriting.
        """
        if not 0 <= range_id < self.num_ranges:
            raise ReproError(
                f"range {range_id} outside ring of {self.num_ranges} ranges"
            )
        base = range_id * self.slots_per_range
        stuck = int(
            np.count_nonzero(self._flags[base : base + self.slots_per_range])
        )
        self._flags[base : base + self.slots_per_range] = _FREE
        return stuck

    def in_use(self) -> int:
        """Slots currently claimed across all ranges (close-time audit)."""
        return int(np.count_nonzero(self._flags))

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Detach; the owner also unlinks the shared block."""
        if self._closed:
            return
        self._closed = True
        self._flags = None  # drop the buffer export before closing the mmap
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedResultRing":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
