"""Multi-process sharded serving with shared-memory frame transport.

:class:`ClusterServer` spawns N worker processes, each owning one
engine/backend pair, and streams frames to them through
``multiprocessing.shared_memory`` ring slots (no pixel pickling) — or, when
the ``shared`` pyramid provider is active, through the zero-copy
shared-pyramid fast path that skips the ring write entirely.  It mirrors
the thread server's semantics — bounded in-flight back-pressure, in-order
results, bit-identical extraction — while scaling past the single GIL.
Placement is pluggable (``round_robin``, ``by_sequence``, load-aware
``least_loaded``) with optional work stealing between worker backlogs.
See ``docs/serving.md`` for when to pick which server and policy.
"""

from .router import (
    BySequencePolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    ShardPolicy,
    WorkerLoad,
    available_policies,
    create_policy,
    register_policy,
)
from .server import ClusterServer, ClusterStats, WorkerStats
from .shared_ring import SharedFrameRing

__all__ = [
    "ClusterServer",
    "ClusterStats",
    "WorkerStats",
    "SharedFrameRing",
    "ShardPolicy",
    "RoundRobinPolicy",
    "BySequencePolicy",
    "LeastLoadedPolicy",
    "WorkerLoad",
    "available_policies",
    "create_policy",
    "register_policy",
]
