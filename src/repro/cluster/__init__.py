"""Multi-process sharded serving with shared-memory frame transport.

:class:`ClusterServer` spawns N worker processes, each owning one
engine/backend pair, and streams frames to them through
``multiprocessing.shared_memory`` ring slots (no pixel pickling).  It
mirrors the thread server's semantics — bounded in-flight back-pressure,
in-order results, bit-identical extraction — while scaling past the single
GIL.  See ``docs/serving.md`` for when to pick which server.
"""

from .router import (
    BySequencePolicy,
    RoundRobinPolicy,
    ShardPolicy,
    available_policies,
    create_policy,
    register_policy,
)
from .server import ClusterServer, ClusterStats, WorkerStats
from .shared_ring import SharedFrameRing

__all__ = [
    "ClusterServer",
    "ClusterStats",
    "WorkerStats",
    "SharedFrameRing",
    "ShardPolicy",
    "RoundRobinPolicy",
    "BySequencePolicy",
    "available_policies",
    "create_policy",
    "register_policy",
]
