"""Multi-process sharded serving with shared-memory frame transport.

:class:`ClusterServer` spawns N worker processes, each owning one
engine/backend pair, and streams frames to them through
``multiprocessing.shared_memory`` ring slots (no pixel pickling) — or, when
the ``shared`` pyramid provider is active, through the zero-copy
shared-pyramid fast path that skips the ring write entirely.  Results
return the same way: workers pack each extraction result's flat arrays
into a :class:`SharedResultRing` slot and the result queues carry only
tiny descriptors (``docs/serving.md`` → Result transport).  It mirrors
the thread server's semantics — bounded in-flight back-pressure, in-order
results, bit-identical extraction — while scaling past the single GIL.
Placement is pluggable (``round_robin``, ``by_sequence``, load-aware
``least_loaded``) with optional work stealing between worker backlogs.
With a :class:`SupervisorConfig` the cluster self-heals (crashed workers
respawn, their jobs requeue under retry/deadline budgets) and with an
:class:`ElasticityConfig` the pool grows and shrinks with load.  See
``docs/serving.md`` for when to pick which server and policy, and its
"Failure semantics" section for the supervision/elasticity rules.
"""

from ..errors import JobAttempt, JobFailed
from .router import (
    BySequencePolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    ShardPolicy,
    WorkerLoad,
    available_policies,
    create_policy,
    register_policy,
    route_to_alive,
)
from .result_ring import ResultRingHandle, RingSlotRef, SharedResultRing
from .server import ClusterServer, ClusterStats, WorkerStats
from .shared_ring import SharedFrameRing
from .supervisor import (
    WORKER_DEAD,
    WORKER_FAILED,
    WORKER_RETIRED,
    WORKER_RETIRING,
    WORKER_RUNNING,
    ElasticityConfig,
    Supervisor,
    SupervisorConfig,
)

__all__ = [
    "ClusterServer",
    "ClusterStats",
    "WorkerStats",
    "SharedFrameRing",
    "SharedResultRing",
    "ResultRingHandle",
    "RingSlotRef",
    "ShardPolicy",
    "RoundRobinPolicy",
    "BySequencePolicy",
    "LeastLoadedPolicy",
    "WorkerLoad",
    "available_policies",
    "create_policy",
    "register_policy",
    "route_to_alive",
    "Supervisor",
    "SupervisorConfig",
    "ElasticityConfig",
    "JobAttempt",
    "JobFailed",
    "WORKER_RUNNING",
    "WORKER_DEAD",
    "WORKER_FAILED",
    "WORKER_RETIRING",
    "WORKER_RETIRED",
]
