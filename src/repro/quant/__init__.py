"""Shared fixed-point formats and quantized arithmetic kernels.

This package is the single home of the FPGA datapath *arithmetic*: the
fixed-point number formats (:mod:`repro.quant.formats`) and the quantized
compute kernels (:mod:`repro.quant.kernels`) — integer-accumulator Harris,
the 8-bit fixed-point Gaussian smoother, the quantized ``v/u`` orientation
lookup and the RS-BRIEF bit evaluation.

Two consumers share these definitions so the datapath can never fork:

* the hardware model (:mod:`repro.hw`) keeps its per-window/per-feature
  datapath units (:class:`~repro.hw.orb_extractor.units.FastDetectionUnit`
  and friends) plus all cycle/latency/resource modelling, but delegates the
  arithmetic itself to the kernels here;
* the ``hwexact`` engine pair (:mod:`repro.frontend.hwexact`,
  :mod:`repro.backends.hwexact`) runs the same kernels batched over whole
  pyramid levels, so full sequences and served workloads execute under the
  exact quantized arithmetic of the accelerator.

``tests/test_hwexact_parity.py`` asserts the two orchestrations are
bit-identical; ``docs/hwexact.md`` documents the architecture.
"""

from .formats import (
    HARRIS_SCORE_FORMAT,
    ORIENTATION_RATIO_FORMAT,
    PIXEL_FORMAT,
    FixedPointFormat,
)
from .kernels import (
    HARRIS_K_FIXED,
    HARRIS_K_FRACTION_BITS,
    HARRIS_SCORE_SHIFT,
    SMOOTHER_WEIGHT_BITS,
    brief_descriptor_from_patch,
    harris_scores_quantized,
    harris_window_score_quantized,
    intensity_centroids_batched,
    orientation_bin_from_patch_quantized,
    orientation_bins_quantized,
    quantization_overrides,
    quantize_gaussian_kernel,
    smooth_image_quantized,
    smooth_window_quantized,
)

__all__ = [
    "FixedPointFormat",
    "PIXEL_FORMAT",
    "ORIENTATION_RATIO_FORMAT",
    "HARRIS_SCORE_FORMAT",
    "HARRIS_K_FIXED",
    "HARRIS_K_FRACTION_BITS",
    "HARRIS_SCORE_SHIFT",
    "SMOOTHER_WEIGHT_BITS",
    "quantize_gaussian_kernel",
    "smooth_window_quantized",
    "smooth_image_quantized",
    "harris_window_score_quantized",
    "harris_scores_quantized",
    "intensity_centroids_batched",
    "orientation_bins_quantized",
    "orientation_bin_from_patch_quantized",
    "brief_descriptor_from_patch",
    "quantization_overrides",
]
