"""Fixed-point number formats of the FPGA datapath.

The FPGA datapath works with fixed-point numbers (pixel intensities, Harris
scores, centroid accumulators) rather than IEEE floats.  These helpers model
quantisation so both the hardware model (:mod:`repro.hw`) and the ``hwexact``
software engines can agree — to the bit — on what a realistic implementation
computes.  Non-finite inputs are rejected loudly: a NaN or infinity reaching
a fixed-point converter means the surrounding model is broken, and silently
wrapping it into the representable range would hide that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import HardwareModelError


def _require_finite(array: np.ndarray, operation: str) -> None:
    """Reject NaN/inf inputs instead of silently clipping them."""
    if not np.isfinite(array).all():
        raise HardwareModelError(
            f"cannot {operation} non-finite values (NaN or inf) in a "
            "fixed-point format"
        )


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed/unsigned fixed-point format ``Q(integer_bits).(fraction_bits)``."""

    integer_bits: int
    fraction_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.integer_bits < 0 or self.fraction_bits < 0:
            raise HardwareModelError("bit widths must be non-negative")
        if self.total_bits == 0:
            raise HardwareModelError("format must have at least one bit")

    @property
    def total_bits(self) -> int:
        return self.integer_bits + self.fraction_bits + (1 if self.signed else 0)

    @property
    def scale(self) -> float:
        return float(2**self.fraction_bits)

    @property
    def max_value(self) -> float:
        return (2 ** (self.integer_bits + self.fraction_bits) - 1) / self.scale

    @property
    def min_value(self) -> float:
        if not self.signed:
            return 0.0
        return -(2 ** (self.integer_bits + self.fraction_bits)) / self.scale

    @property
    def resolution(self) -> float:
        return 1.0 / self.scale

    def quantize(self, value):
        """Round ``value`` (scalar or array) to the nearest representable number."""
        array = np.asarray(value, dtype=np.float64)
        _require_finite(array, "quantize")
        quantized = np.rint(array * self.scale) / self.scale
        return np.clip(quantized, self.min_value, self.max_value)

    def to_integer(self, value):
        """Return the raw integer representation of ``value``."""
        array = np.asarray(value, dtype=np.float64)
        _require_finite(array, "convert")
        clipped = np.clip(array, self.min_value, self.max_value)
        return np.rint(clipped * self.scale).astype(np.int64)

    def from_integer(self, raw):
        """Convert a raw integer representation back to a real value."""
        return np.asarray(raw, dtype=np.float64) / self.scale

    def saturate_integer(self, raw):
        """Clip raw integer values to the format's representable range."""
        array = np.asarray(raw, dtype=np.int64)
        low = int(round(self.min_value * self.scale))
        high = int(round(self.max_value * self.scale))
        return np.clip(array, low, high)

    def quantization_error(self, value) -> float:
        """Maximum absolute quantisation error over ``value``."""
        array = np.asarray(value, dtype=np.float64)
        return float(np.abs(array - self.quantize(array)).max())


#: Format used for pixel intensities (unsigned 8-bit integers).
PIXEL_FORMAT = FixedPointFormat(integer_bits=8, fraction_bits=0, signed=False)
#: Format used for the centroid ratio v/u feeding the orientation LUT.
ORIENTATION_RATIO_FORMAT = FixedPointFormat(integer_bits=6, fraction_bits=10)
#: Format used for Harris corner scores inside the heap comparisons.
HARRIS_SCORE_FORMAT = FixedPointFormat(integer_bits=24, fraction_bits=0)
