"""Quantized arithmetic kernels of the FPGA datapath.

Each kernel is the *single* definition of one piece of the accelerator's
fixed-point arithmetic, exposed in two call styles:

* a **scalar / per-window** form, consumed by the hardware datapath units in
  :mod:`repro.hw.orb_extractor.units` (one 7x7 window, one patch, one
  feature at a time — the granularity of the streaming hardware);
* a **batched** form, consumed by the ``hwexact`` engine pair
  (:mod:`repro.frontend.hwexact`, :mod:`repro.backends.hwexact`) which runs
  whole pyramid levels through numpy.

Every quantity is an integer (or an exactly-representable float64) at every
step, so the two call styles are bit-identical by arithmetic — not merely by
testing — and ``tests/test_hwexact_parity.py`` pins the equivalence down at
the kernel level and end to end.

The quantisation choices model the paper's datapath:

* **Harris** uses doubled central-difference gradients inside the 7x7 window
  (no ``/2``, so gradients stay integral) accumulated in integer registers.
  With doubled gradients the moment sums scale by 4 and the determinant by
  16; the sensitivity constant ``k = 0.04`` is stored as the Q0.7 constant
  ``HARRIS_K_FIXED / 2**HARRIS_K_FRACTION_BITS = 5/128``, and the final
  score is rescaled by an arithmetic right shift and saturated to the
  24-bit :data:`~repro.quant.formats.HARRIS_SCORE_FORMAT`.
* **Smoothing** multiplies by the 8-bit fixed-point Gaussian kernel (weights
  summing to exactly ``2**SMOOTHER_WEIGHT_BITS``) and truncates with a
  right shift — a DSP multiply-accumulate plus wire shift.
* **Orientation** forms the intensity-centroid ratio ``v/u`` in the Q6.10
  :data:`~repro.quant.formats.ORIENTATION_RATIO_FORMAT` and resolves the
  32-way label from the quantized ratio plus sign bits (the LUT comparison
  tree), never evaluating ``atan2``.
* **RS-BRIEF** evaluates the 256 fixed test pairs on the quantized-smoothed
  patch and packs bits LSB-first (bit ``i`` into byte ``i // 8``), the exact
  layout of the hardware BRIEF Computing unit.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from ..errors import HardwareModelError
from ..features.orientation import (
    NUM_ORIENTATION_BINS,
    OrientationGrid,
    intensity_centroid,
    orientation_lut_labels,
)
from ..image import GrayImage
from ..image.filters import gaussian_kernel_2d
from .formats import HARRIS_SCORE_FORMAT, ORIENTATION_RATIO_FORMAT

#: Fraction bits of the fixed-point Harris sensitivity constant ``k``.
HARRIS_K_FRACTION_BITS: int = 7
#: ``round(0.04 * 2**7)``: the Q0.7 representation of ``k`` (5/128).
HARRIS_K_FIXED: int = 5
#: Right shift rescaling the raw integer response into the 24-bit score
#: register.  The worst-case accumulator magnitude over a 7x7 window of
#: 8-bit pixels is ``det16 * 2**7 + 5 * trace4**2 < 2**50`` (doubled
#: gradients bound ``|gx2| <= 255``, so the moment sums stay below
#: ``35 * 255**2``), so shifting by 26 provably fits
#: :data:`~repro.quant.formats.HARRIS_SCORE_FORMAT` without saturating —
#: the score register never clips, it only loses low-order bits.
HARRIS_SCORE_SHIFT: int = 26
#: Half-size of the Harris accumulation window (7x7 window).
HARRIS_WINDOW_RADIUS: int = 3
#: Fraction bits of the quantized Gaussian smoother weights.
SMOOTHER_WEIGHT_BITS: int = 8


@contextmanager
def quantization_overrides(
    harris_score_shift: int | None = None,
    orientation_ratio_format=None,
):
    """Temporarily rebind the datapath's register-width choices.

    Sensitivity sweeps (``benchmarks/bench_quant_sensitivity.py`` via
    :func:`repro.analysis.run_quantization_divergence`) need to ask "what if
    the hardware spent more/fewer bits here?" without forking the kernels.
    Within the ``with`` block every kernel call — scalar hardware units and
    batched ``hwexact`` engines alike — sees the overridden
    :data:`HARRIS_SCORE_SHIFT` and/or ``ORIENTATION_RATIO_FORMAT``; the
    defaults are restored on exit even if the body raises.

    Only kernel *calls* inside the block are affected: the overrides patch
    this module's globals, so values imported into other namespaces
    beforehand (e.g. ``repro.quant.HARRIS_SCORE_SHIFT``) keep reporting the
    defaults.  Worker processes of :class:`repro.cluster.ClusterServer`
    do not inherit overrides applied after they were spawned; sweeps run
    extraction in-process.
    """
    from .formats import FixedPointFormat

    overrides: dict = {}
    if harris_score_shift is not None:
        shift = int(harris_score_shift)
        if shift < 0:
            raise HardwareModelError("harris_score_shift must be non-negative")
        overrides["HARRIS_SCORE_SHIFT"] = shift
    if orientation_ratio_format is not None:
        if not isinstance(orientation_ratio_format, FixedPointFormat):
            raise HardwareModelError(
                "orientation_ratio_format must be a FixedPointFormat"
            )
        overrides["ORIENTATION_RATIO_FORMAT"] = orientation_ratio_format
    saved = {name: globals()[name] for name in overrides}
    globals().update(overrides)
    try:
        yield
    finally:
        globals().update(saved)


# ---------------------------------------------------------------------------
# Gaussian smoothing (8-bit fixed-point weights)
# ---------------------------------------------------------------------------
def quantize_gaussian_kernel(
    size: int = 7, sigma: float = 2.0, weight_bits: int = SMOOTHER_WEIGHT_BITS
) -> np.ndarray:
    """Quantize the 2-D Gaussian kernel to ``weight_bits`` fixed-point weights.

    The weights are rounded to ``weight_bits`` fractional bits and the centre
    tap absorbs the rounding deficit so the quantized kernel sums to exactly
    ``2**weight_bits`` (a constant window stays constant after the shift).
    """
    if weight_bits <= 0:
        raise HardwareModelError("weight_bits must be positive")
    kernel = gaussian_kernel_2d(size, sigma)
    scale = 2**weight_bits
    quantized = np.rint(kernel * scale).astype(np.int64)
    deficit = scale - int(quantized.sum())
    quantized[size // 2, size // 2] += deficit
    return quantized


def smooth_window_quantized(
    window: np.ndarray, kernel_fixed: np.ndarray, weight_bits: int = SMOOTHER_WEIGHT_BITS
) -> int:
    """Smoothed centre pixel of one window (the hardware MAC + shift)."""
    window = np.asarray(window, dtype=np.int64)
    if window.shape != kernel_fixed.shape:
        raise HardwareModelError(
            f"smoother window must be {kernel_fixed.shape[0]}x{kernel_fixed.shape[1]}"
        )
    accumulator = int((window * kernel_fixed).sum())
    return int(np.clip(accumulator >> weight_bits, 0, 255))


def smooth_image_quantized(
    image: GrayImage, kernel_fixed: np.ndarray, weight_bits: int = SMOOTHER_WEIGHT_BITS
) -> GrayImage:
    """Whole-image form of :func:`smooth_window_quantized`.

    Pure integer accumulation, so each interior pixel equals the per-window
    kernel exactly; borders replicate edges, matching a hardware line buffer
    that clamps addresses at image edges.
    """
    size = int(kernel_fixed.shape[0])
    half = size // 2
    padded = np.pad(image.pixels.astype(np.int64), half, mode="edge")
    height, width = image.shape
    accumulator = np.zeros((height, width), dtype=np.int64)
    for row in range(size):
        for col in range(size):
            weight = int(kernel_fixed[row, col])
            if weight:
                accumulator += weight * padded[row : row + height, col : col + width]
    return GrayImage(
        np.clip(accumulator >> weight_bits, 0, 255).astype(np.uint8)
    )


# ---------------------------------------------------------------------------
# Harris response (integer accumulators)
# ---------------------------------------------------------------------------
def harris_window_score_quantized(window: np.ndarray) -> int:
    """Quantized Harris response of one 7x7 window (integer accumulators).

    Doubled central-difference gradients are accumulated into the integer
    second-moment sums; the score is rescaled by :data:`HARRIS_SCORE_SHIFT`
    and saturated to :data:`~repro.quant.formats.HARRIS_SCORE_FORMAT`.
    """
    window = np.asarray(window, dtype=np.int64)
    side = 2 * HARRIS_WINDOW_RADIUS + 1
    if window.shape != (side, side):
        raise HardwareModelError(f"Harris window must be {side}x{side}")
    gx2 = np.zeros_like(window)
    gy2 = np.zeros_like(window)
    gx2[:, 1:-1] = window[:, 2:] - window[:, :-2]
    gy2[1:-1, :] = window[2:, :] - window[:-2, :]
    sxx = int((gx2 * gx2).sum())
    syy = int((gy2 * gy2).sum())
    sxy = int((gx2 * gy2).sum())
    det16 = sxx * syy - sxy * sxy
    trace4 = sxx + syy
    raw = (det16 << HARRIS_K_FRACTION_BITS) - HARRIS_K_FIXED * trace4 * trace4
    return int(HARRIS_SCORE_FORMAT.saturate_integer(raw >> HARRIS_SCORE_SHIFT))


def harris_scores_quantized(image: GrayImage, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Batched :func:`harris_window_score_quantized` at ``(xs, ys)``.

    Every intermediate is an int64, so the gathered box sums land on exactly
    the accumulator values the per-window form computes.  The window-edge
    zeroing of the per-window gradients is reproduced by the asymmetric box
    spans: ``gx`` is undefined on the window's first/last *column* (so its
    sum spans 7 rows x 5 cols), ``gy`` on the first/last *row* (5 x 7), and
    their product only where both exist (5 x 5).  Points must keep the full
    7x7 window inside the image.
    """
    xs = np.asarray(xs, dtype=np.int64)
    ys = np.asarray(ys, dtype=np.int64)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise HardwareModelError("xs and ys must be matching 1-D arrays")
    if xs.size == 0:
        return np.zeros(0, dtype=np.int64)
    height, width = image.shape
    radius = HARRIS_WINDOW_RADIUS
    if (
        int(xs.min()) < radius
        or int(xs.max()) >= width - radius
        or int(ys.min()) < radius
        or int(ys.max()) >= height - radius
    ):
        raise HardwareModelError(
            f"Harris window of radius {radius} exceeds image bounds for some points"
        )
    pixels = image.pixels.astype(np.int64)
    gx2 = np.zeros((height, width), dtype=np.int64)
    gy2 = np.zeros((height, width), dtype=np.int64)
    gx2[:, 1:-1] = pixels[:, 2:] - pixels[:, :-2]
    gy2[1:-1, :] = pixels[2:, :] - pixels[:-2, :]
    stride = width + 1

    def _box(values: np.ndarray, half_rows: int, half_cols: int) -> np.ndarray:
        # per-row prefix sums (one contiguous cumsum), then the vertical
        # accumulation is paid only at the K requested points — the same
        # sparse-gather shape as repro.features.harris.harris_scores_sparse,
        # instead of a full 2-D integral image per moment channel
        prefix = np.zeros((height, stride), dtype=np.int64)
        np.cumsum(values, axis=1, out=prefix[:, 1:])
        flat = prefix.reshape(-1)
        window_rows = np.arange(-half_rows, half_rows + 1, dtype=np.int64)
        rows = (ys[:, None] + window_rows[None, :]) * stride
        right = np.take(flat, rows + (xs[:, None] + half_cols + 1))
        left = np.take(flat, rows + (xs[:, None] - half_cols))
        return (right - left).sum(axis=1)

    sxx = _box(gx2 * gx2, radius, radius - 1)
    syy = _box(gy2 * gy2, radius - 1, radius)
    sxy = _box(gx2 * gy2, radius - 1, radius - 1)
    det16 = sxx * syy - sxy * sxy
    trace4 = sxx + syy
    raw = (det16 << HARRIS_K_FRACTION_BITS) - HARRIS_K_FIXED * trace4 * trace4
    return HARRIS_SCORE_FORMAT.saturate_integer(raw >> HARRIS_SCORE_SHIFT)


# ---------------------------------------------------------------------------
# Orientation (quantized v/u ratio + LUT label)
# ---------------------------------------------------------------------------
_CENTROID_TINY = 1e-12


def orientation_bins_quantized(
    us: np.ndarray, vs: np.ndarray, num_bins: int = NUM_ORIENTATION_BINS
) -> np.ndarray:
    """Discrete orientation labels from centroid offsets, hardware-style.

    The centroid ratio ``v/u`` is quantized to the Q6.10
    :data:`~repro.quant.formats.ORIENTATION_RATIO_FORMAT` before the LUT
    lookup, which is the only place the fixed-point datapath can diverge
    from the float software orientation (by at most one bin, rarely).
    """
    us = np.asarray(us, dtype=np.float64)
    vs = np.asarray(vs, dtype=np.float64)
    u_big = np.abs(us) > _CENTROID_TINY
    safe_u = np.where(u_big, us, 1.0)
    ratio = ORIENTATION_RATIO_FORMAT.quantize(np.where(u_big, vs / safe_u, 0.0))
    v_quantized = np.where(u_big, ratio * us, vs)
    labels = orientation_lut_labels(us, v_quantized, num_bins)
    both_tiny = (np.abs(us) < _CENTROID_TINY) & (np.abs(vs) < _CENTROID_TINY)
    return np.where(both_tiny, 0, labels).astype(np.int64)


def orientation_bin_from_patch_quantized(
    patch: np.ndarray, num_bins: int = NUM_ORIENTATION_BINS
) -> int:
    """Per-patch form of :func:`orientation_bins_quantized` (hardware unit path)."""
    u, v = intensity_centroid(np.asarray(patch, dtype=np.float64))
    return int(orientation_bins_quantized(np.array([u]), np.array([v]), num_bins)[0])


def intensity_centroids_batched(
    image: GrayImage,
    xs: np.ndarray,
    ys: np.ndarray,
    radius: int,
    grid: OrientationGrid | None = None,
    chunk_size: int = 2048,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched intensity centroids, bit-identical to the scalar path.

    One fancy-indexing gather per chunk; the masked weights, coordinate
    products and their sums are all exact integers in float64, so the
    reductions land on the same numbers as
    :func:`repro.features.orientation.intensity_centroid` regardless of
    summation order, and the single ``u = wx / total`` division is then the
    identical float64 operation.
    """
    xs = np.asarray(xs, dtype=np.int64)
    ys = np.asarray(ys, dtype=np.int64)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise HardwareModelError("xs and ys must be matching 1-D arrays")
    if grid is None or grid.radius != radius:
        grid = OrientationGrid.build(radius)
    count = xs.size
    us = np.zeros(count, dtype=np.float64)
    vs = np.zeros(count, dtype=np.float64)
    if count == 0:
        return us, vs
    if (
        int(xs.min()) < radius
        or int(xs.max()) >= image.width - radius
        or int(ys.min()) < radius
        or int(ys.max()) >= image.height - radius
    ):
        raise HardwareModelError(
            f"orientation patch of radius {radius} exceeds image bounds for some points"
        )
    pixels = np.ascontiguousarray(image.pixels)
    flat_pixels = pixels.reshape(-1)
    flat_offsets = grid.flat_offsets(pixels.shape[1])
    centers = ys * pixels.shape[1] + xs
    for start in range(0, count, max(1, chunk_size)):
        stop = min(count, start + max(1, chunk_size))
        patches = flat_pixels[centers[start:stop, None] + flat_offsets[None, :]]
        weights = patches * grid.mask_flat
        totals = weights.sum(axis=1)
        wx = (weights * grid.xx_flat).sum(axis=1)
        wy = (weights * grid.yy_flat).sum(axis=1)
        safe = totals > 0
        denominator = np.where(safe, totals, 1.0)
        us[start:stop] = np.where(safe, wx / denominator, 0.0)
        vs[start:stop] = np.where(safe, wy / denominator, 0.0)
    return us, vs


# ---------------------------------------------------------------------------
# RS-BRIEF bit evaluation
# ---------------------------------------------------------------------------
def brief_descriptor_from_patch(
    patch: np.ndarray, s_int: np.ndarray, d_int: np.ndarray
) -> np.ndarray:
    """Unrotated descriptor bytes from a smoothed patch (hardware bit order).

    Evaluates the rounded test locations against the patch centre and packs
    bit ``i`` into byte ``i // 8`` LSB-first, exactly as the BRIEF Computing
    unit's comparators feed its output register.
    """
    patch = np.asarray(patch, dtype=np.int64)
    if patch.ndim != 2 or patch.shape[0] != patch.shape[1] or patch.shape[0] % 2 == 0:
        raise HardwareModelError("descriptor patch must be square with odd side")
    radius = patch.shape[0] // 2
    max_offset = int(np.abs(np.concatenate([s_int, d_int])).max())
    if radius < max_offset:
        raise HardwareModelError(
            f"patch radius {radius} too small for pattern radius {max_offset}"
        )
    s_vals = patch[radius + s_int[:, 1], radius + s_int[:, 0]]
    d_vals = patch[radius + d_int[:, 1], radius + d_int[:, 0]]
    bits = (s_vals > d_vals).astype(np.uint8)
    return np.packbits(bits, bitorder="little")
