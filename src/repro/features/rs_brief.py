"""RS-BRIEF: the 32-fold rotationally symmetric BRIEF pattern.

This is the paper's core algorithmic contribution.  Instead of sampling 256
independent test pairs, RS-BRIEF samples only ``seed_pairs`` (8) pairs and
replicates them at 32 rotations of 11.25 degrees each, producing a 256-pair
pattern that is invariant (as a *set*) under rotation by any multiple of
11.25 degrees.  Rotating the descriptor to a feature's orientation therefore
never requires rotating test locations: it reduces to a circular shift of the
descriptor bits by ``seed_pairs * orientation_bin`` positions, which in
hardware is a barrel shifter instead of a 30-pattern lookup table.

Bit layout
----------
Bit ``i = g * 32 + r`` of the descriptor corresponds to seed pair ``g``
rotated by ``r * 11.25`` degrees... **No** -- the layout chosen here groups
bits by rotation first: bit ``i = r * seed_pairs + g`` is seed pair ``g``
rotated by ``r`` steps.  With this layout, rotating the pattern by one
symmetry step advances every test to the bit 8 positions later, so applying a
feature orientation of ``n`` bins is exactly the circular shift of the
descriptor by ``8 * n`` bits described in Section 3.1 ("the BRIEF Rotator
moves the 8*n bits from the beginning of the descriptor to the end").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..config import DescriptorConfig
from ..errors import DescriptorError
from .patterns import BriefPattern, _sample_gaussian_locations


@dataclass(frozen=True)
class RsBriefSeed:
    """The seed locations from which the full RS-BRIEF pattern is generated."""

    s_seed: np.ndarray
    d_seed: np.ndarray
    patch_radius: int

    def __post_init__(self) -> None:
        s = np.asarray(self.s_seed, dtype=np.float64)
        d = np.asarray(self.d_seed, dtype=np.float64)
        if s.shape != d.shape or s.ndim != 2 or s.shape[1] != 2:
            raise DescriptorError("seed locations must be matching (N, 2) arrays")
        object.__setattr__(self, "s_seed", s)
        object.__setattr__(self, "d_seed", d)

    @property
    def num_pairs(self) -> int:
        return int(self.s_seed.shape[0])


def generate_seed(config: DescriptorConfig | None = None) -> RsBriefSeed:
    """Sample the ``seed_pairs`` Gaussian-distributed seed location pairs."""
    cfg = config or DescriptorConfig()
    rng = np.random.default_rng(cfg.seed)
    # keep the seed locations inside a slightly smaller radius so that all
    # 32 rotated copies stay inside the descriptor patch after rounding
    inner_radius = cfg.patch_radius - 1
    s = _sample_gaussian_locations(cfg.seed_pairs, inner_radius, rng)
    d = _sample_gaussian_locations(cfg.seed_pairs, inner_radius, rng)
    return RsBriefSeed(s, d, cfg.patch_radius)


def rs_brief_pattern(
    config: DescriptorConfig | None = None, seed: RsBriefSeed | None = None
) -> BriefPattern:
    """Build the full 32-fold rotationally symmetric pattern from a seed.

    The returned pattern has ``symmetry * seed_pairs`` test pairs ordered so
    that bit ``r * seed_pairs + g`` is seed pair ``g`` rotated by
    ``r * (360 / symmetry)`` degrees.
    """
    cfg = config or DescriptorConfig()
    if seed is None:
        seed = generate_seed(cfg)
    if seed.num_pairs != cfg.seed_pairs:
        raise DescriptorError(
            f"seed has {seed.num_pairs} pairs but config expects {cfg.seed_pairs}"
        )
    s_all = np.zeros((cfg.num_bits, 2), dtype=np.float64)
    d_all = np.zeros((cfg.num_bits, 2), dtype=np.float64)
    step = 2.0 * math.pi / cfg.symmetry
    for r in range(cfg.symmetry):
        angle = r * step
        cos_a, sin_a = math.cos(angle), math.sin(angle)
        rotation = np.array([[cos_a, -sin_a], [sin_a, cos_a]])
        start = r * cfg.seed_pairs
        s_all[start : start + cfg.seed_pairs] = seed.s_seed @ rotation.T
        d_all[start : start + cfg.seed_pairs] = seed.d_seed @ rotation.T
    return BriefPattern(s_all, d_all, cfg.patch_radius)


def rotate_descriptor_bits(bits: np.ndarray, orientation_bin: int, seed_pairs: int = 8) -> np.ndarray:
    """Rotate an RS-BRIEF descriptor (bit array) by ``orientation_bin`` steps.

    Implements the BRIEF Rotator: for orientation ``n``, the first ``8 * n``
    bits are moved from the beginning of the descriptor to the end, i.e. a
    circular left-rotation by ``seed_pairs * n`` bit positions.  Computing the
    descriptor with the *unrotated* pattern and then applying this shift is
    equivalent to computing it with the pattern rotated by ``n`` bins.
    """
    bits = np.asarray(bits)
    if bits.ndim != 1:
        raise DescriptorError("descriptor bits must be a 1-D array")
    num_bits = bits.size
    if num_bits % seed_pairs != 0:
        raise DescriptorError("descriptor length must be a multiple of seed_pairs")
    shift = (seed_pairs * orientation_bin) % num_bits
    return np.roll(bits, -shift)


def rotate_descriptor_bytes(descriptor: np.ndarray, orientation_bin: int) -> np.ndarray:
    """Rotate a packed RS-BRIEF descriptor by whole bytes.

    With 8 seed pairs, one orientation bin corresponds to exactly one byte of
    the 32-byte descriptor, so the hardware rotator is a byte-wise barrel
    shifter.  The first ``orientation_bin`` bytes move to the end.
    """
    descriptor = np.asarray(descriptor, dtype=np.uint8)
    if descriptor.ndim != 1:
        raise DescriptorError("descriptor must be a 1-D byte array")
    shift = orientation_bin % descriptor.size
    return np.roll(descriptor, -shift)


def descriptor_rotation_table(num_bytes: int, num_bins: int) -> np.ndarray:
    """Byte-gather table realising :func:`rotate_descriptor_bytes` for batches.

    Row ``b`` holds the source byte index for every output byte of a
    descriptor rotated by orientation bin ``b``:
    ``rotated[i] = descriptor[table[b, i]]``.  Applying the BRIEF Rotator to a
    whole ``(K, num_bytes)`` descriptor block is then a single
    ``take_along_axis`` with ``table[bins]`` — the batched equivalent of the
    hardware barrel shifter.
    """
    if num_bytes <= 0 or num_bins <= 0:
        raise DescriptorError("num_bytes and num_bins must be positive")
    shifts = np.arange(num_bins, dtype=np.int64) % num_bytes
    return (np.arange(num_bytes, dtype=np.int64)[None, :] + shifts[:, None]) % num_bytes


def pattern_symmetry_error(pattern: BriefPattern, symmetry: int, seed_pairs: int) -> float:
    """Measure how far ``pattern`` is from exact ``symmetry``-fold symmetry.

    Rotating the full pattern by one symmetry step should map test ``i`` onto
    test ``i + seed_pairs`` (cyclically).  Returns the maximum Euclidean
    mismatch over all tests; an exactly symmetric pattern returns ~0.  Used
    by property-based tests and by the Figure-2 benchmark to verify the
    constructed pattern really is 32-fold symmetric.
    """
    step = 2.0 * math.pi / symmetry
    cos_a, sin_a = math.cos(step), math.sin(step)
    rotation = np.array([[cos_a, -sin_a], [sin_a, cos_a]])
    rotated_s = pattern.s_locations @ rotation.T
    rotated_d = pattern.d_locations @ rotation.T
    expected_s = np.roll(pattern.s_locations, -seed_pairs, axis=0)
    expected_d = np.roll(pattern.d_locations, -seed_pairs, axis=0)
    err_s = np.sqrt(((rotated_s - expected_s) ** 2).sum(axis=1)).max()
    err_d = np.sqrt(((rotated_d - expected_d) ** 2).sum(axis=1)).max()
    return float(max(err_s, err_d))
