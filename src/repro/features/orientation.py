"""Feature orientation by the intensity-centroid method.

The orientation of a keypoint is the direction of the vector from the patch
centre to the intensity centroid of a circular patch around the keypoint
(equation (3) in the paper).  eSLAM discretises the orientation into 32 bins
of 11.25 degrees, matching the 32-fold symmetry of the RS-BRIEF pattern, so
that rotating the descriptor reduces to a circular shift by ``8 * bin`` bits.

The hardware Orientation Computing module avoids a full ``atan2`` by using a
lookup table on ``v/u`` together with the signs of ``u`` and ``v``; the
functionally equivalent :func:`discretize_orientation` is used both here and
by the hardware model.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import FeatureError
from ..image import GrayImage, circular_mask

#: Default radius of the circular patch used for the centroid (the paper's
#: descriptor tests live in a radius-15 patch).
ORIENTATION_PATCH_RADIUS: int = 15
#: Number of discrete orientation bins (32-fold RS-BRIEF symmetry).
NUM_ORIENTATION_BINS: int = 32
#: Width of one orientation bin in radians (11.25 degrees).
ORIENTATION_BIN_RAD: float = 2.0 * math.pi / NUM_ORIENTATION_BINS


def intensity_centroid(patch: np.ndarray, mask: np.ndarray | None = None) -> Tuple[float, float]:
    """Return the ``(u, v)`` intensity centroid offsets of a square patch.

    ``u`` is the x-offset and ``v`` the y-offset of the centroid from the
    patch centre, weighted by pixel intensity (equation (3)).  A circular
    mask restricted to the inscribed circle is applied by default.
    """
    patch = np.asarray(patch, dtype=np.float64)
    if patch.ndim != 2 or patch.shape[0] != patch.shape[1] or patch.shape[0] % 2 == 0:
        raise FeatureError("patch must be a square array with odd side length")
    radius = patch.shape[0] // 2
    if mask is None:
        mask = circular_mask(radius)
    if mask.shape != patch.shape:
        raise FeatureError("mask shape must match patch shape")
    coords = np.arange(-radius, radius + 1, dtype=np.float64)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    weights = patch * mask
    total = weights.sum()
    if total <= 0:
        return 0.0, 0.0
    u = float((weights * xx).sum() / total)
    v = float((weights * yy).sum() / total)
    return u, v


def orientation_angle(u: float, v: float) -> float:
    """Return the orientation angle in ``[0, 2*pi)`` from centroid offsets."""
    angle = math.atan2(v, u)
    if angle < 0:
        angle += 2.0 * math.pi
    return angle


def discretize_orientation(angle_rad: float, num_bins: int = NUM_ORIENTATION_BINS) -> int:
    """Map a continuous angle to the nearest discrete orientation bin.

    Bin ``n`` represents ``n * (360 / num_bins)`` degrees; angles are rounded
    to the nearest bin centre so the maximum discretisation error is half a
    bin (5.625 degrees for 32 bins).
    """
    if num_bins <= 0:
        raise FeatureError("num_bins must be positive")
    two_pi = 2.0 * math.pi
    angle = angle_rad % two_pi
    return int(round(angle / (two_pi / num_bins))) % num_bins


def orientation_lut_label(u: float, v: float, num_bins: int = NUM_ORIENTATION_BINS) -> int:
    """Hardware-style orientation lookup from ``v/u`` plus sign bits.

    The FPGA module determines the bin from the ratio ``v/u`` and the signs
    of ``u`` and ``v`` without evaluating ``atan2``.  Functionally this is
    identical to :func:`discretize_orientation` applied to ``atan2(v, u)``;
    we implement it by comparing ``|v/u|`` against pre-computed tangent
    thresholds, which is exactly the comparison tree a LUT realises.
    """
    if u == 0.0 and v == 0.0:
        return 0
    if u == 0.0:
        quarter = num_bins // 4
        return quarter if v > 0 else 3 * quarter
    bin_width = 2.0 * math.pi / num_bins
    ratio = abs(v / u)
    # thresholds are the tangents of the bin boundaries in the first quadrant
    base_angle = math.atan(ratio)
    if u > 0 and v >= 0:
        angle = base_angle
    elif u < 0 and v >= 0:
        angle = math.pi - base_angle
    elif u < 0 and v < 0:
        angle = math.pi + base_angle
    else:
        angle = 2.0 * math.pi - base_angle
    return int(round(angle / bin_width)) % num_bins


def compute_orientation(
    image: GrayImage,
    x: int,
    y: int,
    radius: int = ORIENTATION_PATCH_RADIUS,
    num_bins: int = NUM_ORIENTATION_BINS,
) -> Tuple[int, float]:
    """Compute the orientation (bin, radians) of the keypoint at ``(x, y)``.

    Raises :class:`FeatureError` if the circular patch does not fit inside
    the image.
    """
    patch = image.patch(x, y, radius)
    u, v = intensity_centroid(patch)
    angle = orientation_angle(u, v)
    return discretize_orientation(angle, num_bins), angle
