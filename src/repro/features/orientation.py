"""Feature orientation by the intensity-centroid method.

The orientation of a keypoint is the direction of the vector from the patch
centre to the intensity centroid of a circular patch around the keypoint
(equation (3) in the paper).  eSLAM discretises the orientation into 32 bins
of 11.25 degrees, matching the 32-fold symmetry of the RS-BRIEF pattern, so
that rotating the descriptor reduces to a circular shift by ``8 * bin`` bits.

The hardware Orientation Computing module avoids a full ``atan2`` by using a
lookup table on ``v/u`` together with the signs of ``u`` and ``v``; the
functionally equivalent :func:`discretize_orientation` is used both here and
by the hardware model.

Two call styles are provided.  :func:`compute_orientation` is the scalar
per-keypoint path (the reference backend).  :func:`compute_orientations`
processes a whole array of keypoints at once by gathering every patch in a
single fancy-indexing pass and reducing all centroids together; the
:class:`OrientationGrid` caches the circular-mask and coordinate tables so a
long-lived compute engine never rebuilds them.  Both paths perform the exact
same float64 operations in the same order and therefore produce bit-identical
orientations (asserted by the backend parity tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import FeatureError
from ..image import GrayImage, circular_mask

#: Default radius of the circular patch used for the centroid (the paper's
#: descriptor tests live in a radius-15 patch).
ORIENTATION_PATCH_RADIUS: int = 15
#: Number of discrete orientation bins (32-fold RS-BRIEF symmetry).
NUM_ORIENTATION_BINS: int = 32
#: Width of one orientation bin in radians (11.25 degrees).
ORIENTATION_BIN_RAD: float = 2.0 * math.pi / NUM_ORIENTATION_BINS


def intensity_centroid(patch: np.ndarray, mask: np.ndarray | None = None) -> Tuple[float, float]:
    """Return the ``(u, v)`` intensity centroid offsets of a square patch.

    ``u`` is the x-offset and ``v`` the y-offset of the centroid from the
    patch centre, weighted by pixel intensity (equation (3)).  A circular
    mask restricted to the inscribed circle is applied by default.
    """
    patch = np.asarray(patch, dtype=np.float64)
    if patch.ndim != 2 or patch.shape[0] != patch.shape[1] or patch.shape[0] % 2 == 0:
        raise FeatureError("patch must be a square array with odd side length")
    radius = patch.shape[0] // 2
    if mask is None:
        mask = circular_mask(radius)
    if mask.shape != patch.shape:
        raise FeatureError("mask shape must match patch shape")
    coords = np.arange(-radius, radius + 1, dtype=np.float64)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    weights = patch * mask
    total = weights.sum()
    if total <= 0:
        return 0.0, 0.0
    u = float((weights * xx).sum() / total)
    v = float((weights * yy).sum() / total)
    return u, v


def orientation_angle(u: float, v: float) -> float:
    """Return the orientation angle in ``[0, 2*pi)`` from centroid offsets.

    Uses ``np.arctan2`` (not ``math.atan2``) so the scalar path shares the
    exact libm kernel of the batched path — the two differ by one ulp on some
    inputs, which would break the bit-exact backend parity guarantee.
    """
    angle = float(np.arctan2(v, u))
    if angle < 0:
        angle += 2.0 * math.pi
    return angle


def discretize_orientation(angle_rad: float, num_bins: int = NUM_ORIENTATION_BINS) -> int:
    """Map a continuous angle to the nearest discrete orientation bin.

    Bin ``n`` represents ``n * (360 / num_bins)`` degrees; angles are rounded
    to the nearest bin centre so the maximum discretisation error is half a
    bin (5.625 degrees for 32 bins).
    """
    if num_bins <= 0:
        raise FeatureError("num_bins must be positive")
    two_pi = 2.0 * math.pi
    angle = angle_rad % two_pi
    return int(round(angle / (two_pi / num_bins))) % num_bins


def orientation_lut_labels(
    us: np.ndarray, vs: np.ndarray, num_bins: int = NUM_ORIENTATION_BINS
) -> np.ndarray:
    """Hardware-style orientation lookup from ``v/u`` plus sign bits, batched.

    The FPGA module determines the bin from the ratio ``v/u`` and the signs
    of ``u`` and ``v`` without evaluating ``atan2``.  Functionally this is
    identical to :func:`discretize_orientation` applied to ``atan2(v, u)``;
    we implement it by comparing ``|v/u|`` against pre-computed tangent
    thresholds, which is exactly the comparison tree a LUT realises.  This
    is the single definition of that tree — the scalar
    :func:`orientation_lut_label`, the hardware Orientation Computing unit
    and the batched ``hwexact`` backend all resolve labels through it, so
    the LUT cannot fork.
    """
    us = np.asarray(us, dtype=np.float64)
    vs = np.asarray(vs, dtype=np.float64)
    quarter = num_bins // 4
    bin_width = 2.0 * math.pi / num_bins
    u_zero = us == 0.0
    v_zero = vs == 0.0
    safe_u = np.where(u_zero, 1.0, us)
    # thresholds are the tangents of the bin boundaries in the first quadrant;
    # a denormal-small u legitimately overflows the ratio to inf (arctan(inf)
    # is the correct quarter-turn), so silence only that warning
    with np.errstate(over="ignore"):
        base = np.arctan(np.abs(vs / safe_u))
    angle = np.where(
        us > 0,
        np.where(vs >= 0, base, 2.0 * math.pi - base),
        np.where(vs >= 0, math.pi - base, math.pi + base),
    )
    labels = np.rint(angle / bin_width).astype(np.int64) % num_bins
    labels = np.where(u_zero & ~v_zero, np.where(vs > 0, quarter, 3 * quarter), labels)
    return np.where(u_zero & v_zero, 0, labels)


def orientation_lut_label(u: float, v: float, num_bins: int = NUM_ORIENTATION_BINS) -> int:
    """Scalar :func:`orientation_lut_labels` (one centroid per call)."""
    return int(orientation_lut_labels(np.array([u]), np.array([v]), num_bins)[0])


def compute_orientation(
    image: GrayImage,
    x: int,
    y: int,
    radius: int = ORIENTATION_PATCH_RADIUS,
    num_bins: int = NUM_ORIENTATION_BINS,
) -> Tuple[int, float]:
    """Compute the orientation (bin, radians) of the keypoint at ``(x, y)``.

    Raises :class:`FeatureError` if the circular patch does not fit inside
    the image.
    """
    patch = image.patch(x, y, radius)
    u, v = intensity_centroid(patch)
    angle = orientation_angle(u, v)
    return discretize_orientation(angle, num_bins), angle


@dataclass(frozen=True)
class OrientationGrid:
    """Precomputed circular-mask / coordinate tables for batched orientation.

    Building the mask and the ``xx`` / ``yy`` coordinate grids once per engine
    (instead of once per keypoint) is what makes the batched centroid a pure
    gather + reduce.  The tables are stored flattened in raster (C) order so
    the per-keypoint reduction visits patch pixels in exactly the order the
    scalar path does; ``mask_flat`` is kept as float64 ``0.0 / 1.0`` weights
    because ``uint8 * float64`` produces the same products as the scalar
    path's ``float64 * bool`` without materialising a float patch first.
    ``offsets_y`` / ``offsets_x`` are the ``(P, P)`` integer patch offsets
    (``flat_offsets`` is their row-major flattening against an image stride,
    see :func:`compute_orientations`).
    """

    radius: int
    mask: np.ndarray
    mask_flat: np.ndarray
    xx_flat: np.ndarray
    yy_flat: np.ndarray
    offsets_y: np.ndarray
    offsets_x: np.ndarray

    @classmethod
    def build(cls, radius: int) -> "OrientationGrid":
        if radius < 0:
            raise FeatureError("radius must be non-negative")
        mask = circular_mask(radius)
        coords = np.arange(-radius, radius + 1, dtype=np.float64)
        yy, xx = np.meshgrid(coords, coords, indexing="ij")
        icoords = np.arange(-radius, radius + 1, dtype=np.int64)
        offsets_y, offsets_x = np.meshgrid(icoords, icoords, indexing="ij")
        return cls(
            radius=radius,
            mask=mask,
            mask_flat=mask.ravel().astype(np.float64),
            xx_flat=(xx * mask).ravel(),
            yy_flat=(yy * mask).ravel(),
            offsets_y=offsets_y,
            offsets_x=offsets_x,
        )

    def flat_offsets(self, row_stride: int) -> np.ndarray:
        """Patch offsets as flat indices into an image with ``row_stride`` columns."""
        return (self.offsets_y * row_stride + self.offsets_x).ravel()


def compute_orientations(
    image: GrayImage,
    xs: np.ndarray,
    ys: np.ndarray,
    radius: int = ORIENTATION_PATCH_RADIUS,
    num_bins: int = NUM_ORIENTATION_BINS,
    grid: OrientationGrid | None = None,
    chunk_size: int = 2048,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched :func:`compute_orientation` for keypoint arrays.

    Gathers the ``(K, P, P)`` patch stack with one fancy-indexing pass per
    chunk and reduces every intensity centroid together.  All keypoints must
    satisfy ``image.contains(x, y, border=radius)``; the caller (the compute
    backend) filters borders beforehand.  Returns ``(bins, angles)`` arrays of
    shape ``(K,)`` that are bit-identical to the scalar path.
    """
    if num_bins <= 0:
        raise FeatureError("num_bins must be positive")
    xs = np.asarray(xs, dtype=np.int64)
    ys = np.asarray(ys, dtype=np.int64)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise FeatureError("xs and ys must be matching 1-D arrays")
    if grid is None or grid.radius != radius:
        grid = OrientationGrid.build(radius)
    count = xs.size
    bins = np.zeros(count, dtype=np.int64)
    angles = np.zeros(count, dtype=np.float64)
    if count == 0:
        return bins, angles
    # flat indexing would silently wrap out-of-bounds patches; fail loudly
    # like the scalar image.patch does instead
    if (
        int(xs.min()) < radius
        or int(xs.max()) >= image.width - radius
        or int(ys.min()) < radius
        or int(ys.max()) >= image.height - radius
    ):
        raise FeatureError(
            f"orientation patch of radius {radius} exceeds image bounds for some keypoints"
        )
    pixels = np.ascontiguousarray(image.pixels)
    flat_pixels = pixels.reshape(-1)
    flat_offsets = grid.flat_offsets(pixels.shape[1])
    centers = ys * pixels.shape[1] + xs
    two_pi = 2.0 * math.pi
    bin_width = two_pi / num_bins
    for start in range(0, count, max(1, chunk_size)):
        stop = min(count, start + max(1, chunk_size))
        # one gather for the whole chunk's patches, flattened in raster order
        # so the per-keypoint reductions run in the scalar path's pixel order
        patches = flat_pixels[centers[start:stop, None] + flat_offsets[None, :]]
        weights = patches * grid.mask_flat
        totals = weights.sum(axis=1)
        wx = (weights * grid.xx_flat).sum(axis=1)
        wy = (weights * grid.yy_flat).sum(axis=1)
        safe = totals > 0
        denom = np.where(safe, totals, 1.0)
        u = np.where(safe, wx / denom, 0.0)
        v = np.where(safe, wy / denom, 0.0)
        angle = np.arctan2(v, u)
        angle = np.where(angle < 0, angle + two_pi, angle)
        angles[start:stop] = angle
        bins[start:stop] = np.rint(np.mod(angle, two_pi) / bin_width).astype(np.int64) % num_bins
    return bins, angles
