"""Feature substrate: FAST, Harris, NMS, orientation, BRIEF / RS-BRIEF, ORB."""

from .keypoint import Feature, Keypoint
from .fast import FAST_CIRCLE_OFFSETS, detect_fast_keypoints, fast_corner_mask, is_fast_corner
from .harris import HARRIS_K, harris_response_map, harris_scores_at
from .nms import non_maximum_suppression, suppress_keypoints
from .orientation import (
    NUM_ORIENTATION_BINS,
    ORIENTATION_PATCH_RADIUS,
    OrientationGrid,
    compute_orientation,
    compute_orientations,
    discretize_orientation,
    intensity_centroid,
    orientation_angle,
    orientation_lut_label,
)
from .patterns import BriefPattern, RotatedPatternLUT, original_brief_pattern, rotated_pattern
from .rs_brief import (
    RsBriefSeed,
    descriptor_rotation_table,
    generate_seed,
    pattern_symmetry_error,
    rotate_descriptor_bits,
    rotate_descriptor_bytes,
    rs_brief_pattern,
)
from .brief import (
    OriginalOrbDescriptorEngine,
    RsBriefDescriptorEngine,
    descriptor_rotation_equivalence_error,
    evaluate_pattern,
    evaluate_pattern_batch,
    make_descriptor_engine,
    pack_bit_matrix,
    pack_bits,
    unpack_bits,
)
from .heap_filter import BoundedScoreHeap, HeapStatistics, top_k_by_score
from .orb import (
    ExtractionProfile,
    ExtractionResult,
    OrbExtractor,
    check_workflow_equivalence,
    extract_features,
)

__all__ = [
    "Feature",
    "Keypoint",
    "FAST_CIRCLE_OFFSETS",
    "fast_corner_mask",
    "is_fast_corner",
    "detect_fast_keypoints",
    "HARRIS_K",
    "harris_response_map",
    "harris_scores_at",
    "non_maximum_suppression",
    "suppress_keypoints",
    "NUM_ORIENTATION_BINS",
    "ORIENTATION_PATCH_RADIUS",
    "OrientationGrid",
    "compute_orientation",
    "compute_orientations",
    "discretize_orientation",
    "intensity_centroid",
    "orientation_angle",
    "orientation_lut_label",
    "BriefPattern",
    "RotatedPatternLUT",
    "original_brief_pattern",
    "rotated_pattern",
    "RsBriefSeed",
    "generate_seed",
    "rs_brief_pattern",
    "rotate_descriptor_bits",
    "rotate_descriptor_bytes",
    "descriptor_rotation_table",
    "pattern_symmetry_error",
    "RsBriefDescriptorEngine",
    "OriginalOrbDescriptorEngine",
    "make_descriptor_engine",
    "evaluate_pattern",
    "evaluate_pattern_batch",
    "pack_bit_matrix",
    "pack_bits",
    "unpack_bits",
    "descriptor_rotation_equivalence_error",
    "BoundedScoreHeap",
    "HeapStatistics",
    "top_k_by_score",
    "ExtractionProfile",
    "ExtractionResult",
    "OrbExtractor",
    "extract_features",
    "check_workflow_equivalence",
]
