"""BRIEF descriptor computation.

Given a smoothed image, a keypoint and a test-location pattern, the BRIEF
descriptor is the 256-bit string whose bit ``i`` is 1 iff the intensity at
the first location of test ``i`` exceeds the intensity at the second
location.  Two rotation-handling strategies are provided, matching the two
designs the paper compares:

* **Original ORB** (:class:`OriginalOrbDescriptorEngine`) -- look up a
  pre-rotated pattern for the feature's orientation (30 discrete angles) and
  evaluate the tests with those rotated locations.
* **RS-BRIEF** (:class:`RsBriefDescriptorEngine`) -- evaluate the tests with
  the fixed, rotationally symmetric pattern and then circularly shift the
  resulting descriptor by ``8 * orientation_bin`` bits (the BRIEF Rotator).

Both engines expose two entry points used by the compute backends in
:mod:`repro.backends`: the scalar :meth:`describe` (one keypoint per call,
the reference path) and the batched :meth:`describe_batch`, which evaluates
the pattern for a whole keypoint array as one ``(K, 256)`` comparison
followed by a row-wise ``packbits`` and — for RS-BRIEF — a single byte-gather
rotation.  The batched path performs the exact same comparisons and byte
permutations and is bit-identical to the scalar path.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..config import DescriptorConfig
from ..errors import DescriptorError, FeatureError
from ..image import GrayImage
from .keypoint import Keypoint
from .orientation import NUM_ORIENTATION_BINS
from .patterns import BriefPattern, RotatedPatternLUT, original_brief_pattern
from .rs_brief import descriptor_rotation_table, rotate_descriptor_bytes, rs_brief_pattern


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack an array of 0/1 bits into bytes, bit ``i`` into byte ``i // 8``."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 1 or bits.size % 8 != 0:
        raise DescriptorError("bit array length must be a positive multiple of 8")
    return np.packbits(bits, bitorder="little")


def unpack_bits(descriptor: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_bits`."""
    descriptor = np.asarray(descriptor, dtype=np.uint8)
    if descriptor.ndim != 1:
        raise DescriptorError("descriptor must be a 1-D byte array")
    return np.unpackbits(descriptor, bitorder="little")


def evaluate_pattern(
    image: GrayImage, x: int, y: int, pattern: BriefPattern
) -> np.ndarray:
    """Evaluate the BRIEF tests of ``pattern`` at keypoint ``(x, y)``.

    Returns the raw bit array (unpacked).  The image is expected to already
    be smoothed; locations are rounded to the nearest pixel, which is what
    the fixed-point hardware address generator does.
    """
    radius = int(np.ceil(pattern.max_radius()))
    if not image.contains(x, y, border=radius):
        raise FeatureError(
            f"keypoint ({x}, {y}) too close to the border for patch radius {radius}"
        )
    s_int, d_int = pattern.rounded()
    s_vals = image.pixels[y + s_int[:, 1], x + s_int[:, 0]].astype(np.int16)
    d_vals = image.pixels[y + d_int[:, 1], x + d_int[:, 0]].astype(np.int16)
    return (s_vals > d_vals).astype(np.uint8)


def evaluate_pattern_batch(
    image: GrayImage,
    xs: np.ndarray,
    ys: np.ndarray,
    s_int: np.ndarray,
    d_int: np.ndarray,
) -> np.ndarray:
    """Evaluate rounded BRIEF test locations for a whole keypoint batch.

    ``s_int`` / ``d_int`` are integer test locations, either shared across the
    batch (``(num_bits, 2)``) or per keypoint (``(K, num_bits, 2)``, the
    pre-rotated original-ORB case).  Returns the ``(K, num_bits)`` boolean bit
    matrix — the single batched comparison the vectorized backend packs into
    descriptors.  Callers must pre-filter keypoints to the pattern's border.
    """
    xs = np.asarray(xs, dtype=np.int64)
    ys = np.asarray(ys, dtype=np.int64)
    if xs.ndim != 1 or xs.shape != ys.shape:
        raise FeatureError("xs and ys must be matching 1-D arrays")
    if xs.size:
        # flat indexing would silently wrap out-of-bounds locations; fail
        # loudly like the scalar evaluate_pattern does instead
        border_x = int(max(np.abs(s_int[..., 0]).max(), np.abs(d_int[..., 0]).max()))
        border_y = int(max(np.abs(s_int[..., 1]).max(), np.abs(d_int[..., 1]).max()))
        if (
            int(xs.min()) < border_x
            or int(xs.max()) >= image.width - border_x
            or int(ys.min()) < border_y
            or int(ys.max()) >= image.height - border_y
        ):
            raise FeatureError(
                "keypoints too close to the border for the pattern's test locations"
            )
    pixels = np.ascontiguousarray(image.pixels)
    stride = pixels.shape[1]
    centers = ys * stride + xs
    if s_int.ndim == 2:
        s_flat = centers[:, None] + (s_int[:, 1] * stride + s_int[:, 0])[None, :]
        d_flat = centers[:, None] + (d_int[:, 1] * stride + d_int[:, 0])[None, :]
    elif s_int.ndim == 3:
        s_flat = centers[:, None] + (s_int[:, :, 1] * stride + s_int[:, :, 0])
        d_flat = centers[:, None] + (d_int[:, :, 1] * stride + d_int[:, :, 0])
    else:
        raise DescriptorError("test locations must be (num_bits, 2) or (K, num_bits, 2)")
    flat = pixels.reshape(-1)
    return flat[s_flat] > flat[d_flat]


def pack_bit_matrix(bits: np.ndarray) -> np.ndarray:
    """Row-wise :func:`pack_bits`: ``(K, num_bits)`` bits to ``(K, num_bits/8)`` bytes."""
    bits = np.asarray(bits)
    if bits.ndim != 2 or bits.shape[1] % 8 != 0:
        raise DescriptorError("bit matrix must be (K, num_bits) with num_bits % 8 == 0")
    return np.packbits(bits.astype(np.uint8), axis=1, bitorder="little")


class DescriptorEngine(Protocol):
    """Common interface of the two descriptor strategies."""

    config: DescriptorConfig

    def describe(self, smoothed: GrayImage, keypoint: Keypoint) -> np.ndarray:
        """Return the packed descriptor bytes for ``keypoint``."""
        ...

    def describe_batch(
        self,
        smoothed: GrayImage,
        xs: np.ndarray,
        ys: np.ndarray,
        orientation_bins: np.ndarray,
        orientation_rads: np.ndarray,
    ) -> np.ndarray:
        """Return packed descriptors ``(K, num_bytes)`` for a keypoint batch."""
        ...

    def patch_radius(self) -> int:
        """Return the border margin required around a keypoint."""
        ...


class RsBriefDescriptorEngine:
    """Descriptor engine using the rotationally symmetric RS-BRIEF pattern."""

    def __init__(self, config: DescriptorConfig | None = None) -> None:
        self.config = config or DescriptorConfig()
        self.pattern = rs_brief_pattern(self.config)
        self._radius = int(np.ceil(self.pattern.max_radius()))
        # batch-path tables, built once per engine and reused for every frame
        self._s_int, self._d_int = self.pattern.rounded()
        self._rotation_table = descriptor_rotation_table(
            self.config.num_bytes, NUM_ORIENTATION_BINS
        )

    def patch_radius(self) -> int:
        return self._radius

    def describe(self, smoothed: GrayImage, keypoint: Keypoint) -> np.ndarray:
        """Compute the descriptor and rotate it by the keypoint orientation.

        The tests are always evaluated with the unrotated pattern; the
        orientation is applied as a byte-wise circular shift, exactly what the
        hardware BRIEF Rotator does.
        """
        if keypoint.orientation_bin is None:
            raise FeatureError("keypoint orientation must be computed before description")
        bits = evaluate_pattern(smoothed, keypoint.x, keypoint.y, self.pattern)
        packed = pack_bits(bits)
        return rotate_descriptor_bytes(packed, keypoint.orientation_bin)

    def describe_batch(
        self,
        smoothed: GrayImage,
        xs: np.ndarray,
        ys: np.ndarray,
        orientation_bins: np.ndarray,
        orientation_rads: np.ndarray,
    ) -> np.ndarray:
        """Batched :meth:`describe`: one ``(K, 256)`` comparison + packbits.

        The whole batch is evaluated against the single unrotated pattern and
        every descriptor is rotated by its own orientation through one
        byte-gather (the batched BRIEF Rotator).  ``orientation_rads`` is
        unused here — RS-BRIEF only needs the discrete bin.
        """
        bins = np.asarray(orientation_bins, dtype=np.int64)
        if bins.size == 0:
            return np.zeros((0, self.config.num_bytes), dtype=np.uint8)
        bits = evaluate_pattern_batch(smoothed, xs, ys, self._s_int, self._d_int)
        packed = pack_bit_matrix(bits)
        gather = self._rotation_table[bins % NUM_ORIENTATION_BINS]
        return np.take_along_axis(packed, gather, axis=1)


class OriginalOrbDescriptorEngine:
    """Descriptor engine using the original ORB pattern with a 30-angle LUT."""

    def __init__(
        self,
        config: DescriptorConfig | None = None,
        num_lut_angles: int = 30,
    ) -> None:
        self.config = config or DescriptorConfig()
        base = original_brief_pattern(
            num_bits=self.config.num_bits,
            patch_radius=self.config.patch_radius,
            seed=self.config.seed,
        )
        self.lut = RotatedPatternLUT(base, num_angles=num_lut_angles)
        self._radius = int(np.ceil(base.max_radius())) + 1

    def patch_radius(self) -> int:
        return self._radius

    def describe(self, smoothed: GrayImage, keypoint: Keypoint) -> np.ndarray:
        """Look up the pre-rotated pattern for the orientation and evaluate it."""
        if keypoint.orientation_rad is None:
            raise FeatureError("keypoint orientation must be computed before description")
        pattern = self.lut.pattern_for_angle(keypoint.orientation_rad)
        bits = evaluate_pattern(smoothed, keypoint.x, keypoint.y, pattern)
        return pack_bits(bits)

    def describe_batch(
        self,
        smoothed: GrayImage,
        xs: np.ndarray,
        ys: np.ndarray,
        orientation_bins: np.ndarray,
        orientation_rads: np.ndarray,
    ) -> np.ndarray:
        """Batched :meth:`describe` via the pre-rotated pattern stack.

        Every keypoint selects its LUT entry from the stacked
        ``(num_angles, 256, 2)`` rounded-location ROM, so the whole batch is
        still one gather + one ``(K, 256)`` comparison.  ``orientation_bins``
        is unused — original ORB selects patterns by continuous angle.
        """
        rads = np.asarray(orientation_rads, dtype=np.float64)
        if rads.size == 0:
            return np.zeros((0, self.config.num_bits // 8), dtype=np.uint8)
        s_stack, d_stack = self.lut.rounded_stack()
        indices = self.lut.angle_indices(rads)
        bits = evaluate_pattern_batch(smoothed, xs, ys, s_stack[indices], d_stack[indices])
        return pack_bit_matrix(bits)


def make_descriptor_engine(
    use_rs_brief: bool, config: DescriptorConfig | None = None
) -> DescriptorEngine:
    """Factory returning the requested descriptor engine."""
    if use_rs_brief:
        return RsBriefDescriptorEngine(config)
    return OriginalOrbDescriptorEngine(config)


def descriptor_rotation_equivalence_error(
    smoothed: GrayImage,
    keypoint: Keypoint,
    config: DescriptorConfig | None = None,
) -> int:
    """Hamming distance between shift-rotation and true pattern-rotation.

    For RS-BRIEF, computing the descriptor with the seed pattern rotated by
    the orientation angle should give exactly the same bits as computing it
    with the unrotated pattern and shifting.  Returns the number of differing
    bits (0 in the ideal case; tiny values can appear from rounding of
    rotated locations).  Exposed for validation tests and EXPERIMENTS.md.
    """
    from .patterns import rotated_pattern  # local import to avoid cycle at module load

    cfg = config or DescriptorConfig()
    engine = RsBriefDescriptorEngine(cfg)
    shifted = engine.describe(smoothed, keypoint)
    assert keypoint.orientation_bin is not None
    angle = 2.0 * np.pi * keypoint.orientation_bin / NUM_ORIENTATION_BINS
    rotated = rotated_pattern(engine.pattern, angle)
    bits = evaluate_pattern(smoothed, keypoint.x, keypoint.y, rotated)
    direct = pack_bits(bits)
    return int(np.unpackbits(shifted ^ direct).sum())
