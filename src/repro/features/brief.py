"""BRIEF descriptor computation.

Given a smoothed image, a keypoint and a test-location pattern, the BRIEF
descriptor is the 256-bit string whose bit ``i`` is 1 iff the intensity at
the first location of test ``i`` exceeds the intensity at the second
location.  Two rotation-handling strategies are provided, matching the two
designs the paper compares:

* **Original ORB** (:class:`OriginalOrbDescriptorEngine`) -- look up a
  pre-rotated pattern for the feature's orientation (30 discrete angles) and
  evaluate the tests with those rotated locations.
* **RS-BRIEF** (:class:`RsBriefDescriptorEngine`) -- evaluate the tests with
  the fixed, rotationally symmetric pattern and then circularly shift the
  resulting descriptor by ``8 * orientation_bin`` bits (the BRIEF Rotator).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..config import DescriptorConfig
from ..errors import DescriptorError, FeatureError
from ..image import GrayImage
from .keypoint import Keypoint
from .orientation import NUM_ORIENTATION_BINS
from .patterns import BriefPattern, RotatedPatternLUT, original_brief_pattern
from .rs_brief import rotate_descriptor_bytes, rs_brief_pattern


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack an array of 0/1 bits into bytes, bit ``i`` into byte ``i // 8``."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 1 or bits.size % 8 != 0:
        raise DescriptorError("bit array length must be a positive multiple of 8")
    return np.packbits(bits, bitorder="little")


def unpack_bits(descriptor: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_bits`."""
    descriptor = np.asarray(descriptor, dtype=np.uint8)
    if descriptor.ndim != 1:
        raise DescriptorError("descriptor must be a 1-D byte array")
    return np.unpackbits(descriptor, bitorder="little")


def evaluate_pattern(
    image: GrayImage, x: int, y: int, pattern: BriefPattern
) -> np.ndarray:
    """Evaluate the BRIEF tests of ``pattern`` at keypoint ``(x, y)``.

    Returns the raw bit array (unpacked).  The image is expected to already
    be smoothed; locations are rounded to the nearest pixel, which is what
    the fixed-point hardware address generator does.
    """
    radius = int(np.ceil(pattern.max_radius()))
    if not image.contains(x, y, border=radius):
        raise FeatureError(
            f"keypoint ({x}, {y}) too close to the border for patch radius {radius}"
        )
    s_int, d_int = pattern.rounded()
    s_vals = image.pixels[y + s_int[:, 1], x + s_int[:, 0]].astype(np.int16)
    d_vals = image.pixels[y + d_int[:, 1], x + d_int[:, 0]].astype(np.int16)
    return (s_vals > d_vals).astype(np.uint8)


class DescriptorEngine(Protocol):
    """Common interface of the two descriptor strategies."""

    config: DescriptorConfig

    def describe(self, smoothed: GrayImage, keypoint: Keypoint) -> np.ndarray:
        """Return the packed descriptor bytes for ``keypoint``."""
        ...

    def patch_radius(self) -> int:
        """Return the border margin required around a keypoint."""
        ...


class RsBriefDescriptorEngine:
    """Descriptor engine using the rotationally symmetric RS-BRIEF pattern."""

    def __init__(self, config: DescriptorConfig | None = None) -> None:
        self.config = config or DescriptorConfig()
        self.pattern = rs_brief_pattern(self.config)
        self._radius = int(np.ceil(self.pattern.max_radius()))

    def patch_radius(self) -> int:
        return self._radius

    def describe(self, smoothed: GrayImage, keypoint: Keypoint) -> np.ndarray:
        """Compute the descriptor and rotate it by the keypoint orientation.

        The tests are always evaluated with the unrotated pattern; the
        orientation is applied as a byte-wise circular shift, exactly what the
        hardware BRIEF Rotator does.
        """
        if keypoint.orientation_bin is None:
            raise FeatureError("keypoint orientation must be computed before description")
        bits = evaluate_pattern(smoothed, keypoint.x, keypoint.y, self.pattern)
        packed = pack_bits(bits)
        return rotate_descriptor_bytes(packed, keypoint.orientation_bin)


class OriginalOrbDescriptorEngine:
    """Descriptor engine using the original ORB pattern with a 30-angle LUT."""

    def __init__(
        self,
        config: DescriptorConfig | None = None,
        num_lut_angles: int = 30,
    ) -> None:
        self.config = config or DescriptorConfig()
        base = original_brief_pattern(
            num_bits=self.config.num_bits,
            patch_radius=self.config.patch_radius,
            seed=self.config.seed,
        )
        self.lut = RotatedPatternLUT(base, num_angles=num_lut_angles)
        self._radius = int(np.ceil(base.max_radius())) + 1

    def patch_radius(self) -> int:
        return self._radius

    def describe(self, smoothed: GrayImage, keypoint: Keypoint) -> np.ndarray:
        """Look up the pre-rotated pattern for the orientation and evaluate it."""
        if keypoint.orientation_rad is None:
            raise FeatureError("keypoint orientation must be computed before description")
        pattern = self.lut.pattern_for_angle(keypoint.orientation_rad)
        bits = evaluate_pattern(smoothed, keypoint.x, keypoint.y, pattern)
        return pack_bits(bits)


def make_descriptor_engine(
    use_rs_brief: bool, config: DescriptorConfig | None = None
) -> DescriptorEngine:
    """Factory returning the requested descriptor engine."""
    if use_rs_brief:
        return RsBriefDescriptorEngine(config)
    return OriginalOrbDescriptorEngine(config)


def descriptor_rotation_equivalence_error(
    smoothed: GrayImage,
    keypoint: Keypoint,
    config: DescriptorConfig | None = None,
) -> int:
    """Hamming distance between shift-rotation and true pattern-rotation.

    For RS-BRIEF, computing the descriptor with the seed pattern rotated by
    the orientation angle should give exactly the same bits as computing it
    with the unrotated pattern and shifting.  Returns the number of differing
    bits (0 in the ideal case; tiny values can appear from rounding of
    rotated locations).  Exposed for validation tests and EXPERIMENTS.md.
    """
    from .patterns import rotated_pattern  # local import to avoid cycle at module load

    cfg = config or DescriptorConfig()
    engine = RsBriefDescriptorEngine(cfg)
    shifted = engine.describe(smoothed, keypoint)
    assert keypoint.orientation_bin is not None
    angle = 2.0 * np.pi * keypoint.orientation_bin / NUM_ORIENTATION_BINS
    rotated = rotated_pattern(engine.pattern, angle)
    bits = evaluate_pattern(smoothed, keypoint.x, keypoint.y, rotated)
    direct = pack_bits(bits)
    return int(np.unpackbits(shifted ^ direct).sum())
