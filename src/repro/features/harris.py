"""Harris corner response.

The FAST Detection module computes a Harris score for every detected FAST
keypoint; the Heap later keeps only the ``N`` best-scoring features.  The
Harris response of a pixel is

    R = det(M) - k * trace(M)^2

where ``M`` is the second-moment matrix of image gradients accumulated over a
small window around the pixel.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..errors import FeatureError
from ..image import GrayImage
from ..image.filters import sobel_gradients
from ..image.scratch import Workspace, edge_pad_into, workspace_array

#: Standard Harris sensitivity constant.
HARRIS_K: float = 0.04
#: Half-size of the accumulation window (7x7 window -> block_radius = 3),
#: matching the 7x7 pixel patch the hardware FAST/Harris unit consumes.
HARRIS_BLOCK_RADIUS: int = 3


def harris_response_map(
    image: GrayImage, k: float = HARRIS_K, block_radius: int = HARRIS_BLOCK_RADIUS
) -> np.ndarray:
    """Return the Harris response for every pixel of ``image``.

    The result is a float64 array of the same shape.  Values near the border
    (within ``block_radius + 1``) are valid but accumulated over a clipped
    window, exactly like a hardware window that clamps at image edges.
    """
    if block_radius < 1:
        raise FeatureError("block_radius must be >= 1")
    gx, gy = sobel_gradients(image)
    ixx = gx * gx
    iyy = gy * gy
    ixy = gx * gy
    window = 2 * block_radius + 1
    sxx = _box_filter(ixx, window)
    syy = _box_filter(iyy, window)
    sxy = _box_filter(ixy, window)
    det = sxx * syy - sxy * sxy
    trace = sxx + syy
    return det - k * trace * trace


def _box_filter(values: np.ndarray, window: int) -> np.ndarray:
    """Sum ``values`` over a ``window x window`` neighbourhood (edge-replicated)."""
    half = window // 2
    padded = np.pad(values, half, mode="edge")
    integral = np.zeros(
        (padded.shape[0] + 1, padded.shape[1] + 1), dtype=np.float64
    )
    integral[1:, 1:] = np.cumsum(np.cumsum(padded, axis=0), axis=1)
    h, w = values.shape
    top = integral[:h, :w]
    bottom = integral[window : window + h, window : window + w]
    right = integral[:h, window : window + w]
    left = integral[window : window + h, :w]
    return bottom - right - left + top


def harris_scores_sparse(
    image: GrayImage,
    xs: np.ndarray,
    ys: np.ndarray,
    k: float = HARRIS_K,
    block_radius: int = HARRIS_BLOCK_RADIUS,
    workspace: Optional[Workspace] = None,
) -> np.ndarray:
    """Harris responses gathered only at ``(xs, ys)``, bit-identical to the map.

    Avoids materialising the dense response: Sobel gradients and their
    products are computed once in integer arithmetic, summed into int64
    integral images, and the ``window x window`` box sums are gathered with
    four reads per point.  This is exact — every value the float64 reference
    pipeline produces up to the box sums is an integer far below 2**53
    (|gradient| <= 4*255, so products < 2**21 and whole-image integrals
    < 2**40), so its cumsums never round and the int64 path lands on the
    same numbers.  The final ``det - k*trace**2`` is then evaluated with the
    reference's float64 expression, making the result bit-identical to
    ``harris_response_map(image)[ys, xs]``.

    ``workspace`` optionally recycles the padded/integral buffers across
    calls (see :mod:`repro.image.scratch`).
    """
    if block_radius < 1:
        raise FeatureError("block_radius must be >= 1")
    xs = np.asarray(xs, dtype=np.int64)
    ys = np.asarray(ys, dtype=np.int64)
    height, width = image.shape
    outside = (xs < 0) | (xs >= width) | (ys < 0) | (ys >= height)
    if outside.any():
        first = int(np.argmax(outside))
        raise FeatureError(
            f"point ({int(xs[first])}, {int(ys[first])}) outside image {image.shape}"
        )
    if xs.size == 0:
        return np.zeros(0, dtype=np.float64)
    window = 2 * block_radius + 1
    # Sobel via edge-padded integer views (same values as sobel_gradients),
    # accumulated into workspace buffers so no full-image temporary survives;
    # int16 holds every intermediate (|gradient| <= 4*255)
    padded = workspace_array(workspace, "harris_pixels", (height + 2, width + 2), np.int16)
    edge_pad_into(image.pixels, 1, padded)
    top, mid, bot = padded[:-2], padded[1:-1], padded[2:]
    gx = workspace_array(workspace, "harris_gx_raw", (height, width), np.int16)
    gy = workspace_array(workspace, "harris_gy_raw", (height, width), np.int16)
    accum = workspace_array(workspace, "harris_accum", (height, width), np.int16)
    # gx = (top+2*mid+bot) on the right column minus the same on the left
    np.add(top[:, 2:], bot[:, 2:], out=gx)
    np.add(gx, mid[:, 2:], out=gx)
    np.add(gx, mid[:, 2:], out=gx)
    np.add(top[:, :-2], bot[:, :-2], out=accum)
    np.add(accum, mid[:, :-2], out=accum)
    np.add(accum, mid[:, :-2], out=accum)
    gx -= accum
    # gy = (left+2*mid+right) on the bottom row minus the same on the top
    np.add(bot[:, :-2], bot[:, 2:], out=gy)
    np.add(gy, bot[:, 1:-1], out=gy)
    np.add(gy, bot[:, 1:-1], out=gy)
    np.add(top[:, :-2], top[:, 2:], out=accum)
    np.add(accum, top[:, 1:-1], out=accum)
    np.add(accum, top[:, 1:-1], out=accum)
    gy -= accum
    # edge-padded gradients; products of replicated edges == replicated
    # products, so padding the gradients once replaces three product pads
    # the pad step also widens to int32: np.multiply with int16 operands would
    # wrap in int16 before casting to an int32 out
    pad_shape = (height + 2 * block_radius, width + 2 * block_radius)
    gx_pad = workspace_array(workspace, "harris_gx", pad_shape, np.int32)
    gy_pad = workspace_array(workspace, "harris_gy", pad_shape, np.int32)
    edge_pad_into(gx, block_radius, gx_pad)
    edge_pad_into(gy, block_radius, gy_pad)
    products = workspace_array(workspace, "harris_products", (3,) + pad_shape, np.int32)
    np.multiply(gx_pad, gx_pad, out=products[0])
    np.multiply(gy_pad, gy_pad, out=products[1])
    np.multiply(gx_pad, gy_pad, out=products[2])
    # per-row prefix sums (contiguous cumsum), then a gathered difference over
    # the window rows per point — cheaper than a full 2-D integral because the
    # column accumulation is only paid at the K requested points.  Row totals
    # are bounded by pad_width * (4*255)**2, so narrow images keep the whole
    # prefix in int32 (exact either way; halves the memory traffic)
    prefix_dtype = np.int32 if (pad_shape[1] + 1) * 1_040_400 < 2**31 else np.int64
    # buffer names carry the dtype so a pyramid whose levels straddle the
    # int32-width threshold keeps one stable buffer per dtype instead of
    # reallocating the two largest workspace arrays on every level
    dtype_tag = np.dtype(prefix_dtype).name
    prefix = workspace_array(
        workspace, f"harris_prefix_{dtype_tag}", (3, pad_shape[0], pad_shape[1] + 1), prefix_dtype
    )
    prefix[:, :, 0] = 0
    np.cumsum(products, axis=2, out=prefix[:, :, 1:])
    # horizontal window sums for every output column (dense subtract of two
    # prefix views), then the vertical accumulation is paid only at the K
    # requested points: one (K, window) gather per channel
    spans = workspace_array(
        workspace, f"harris_spans_{dtype_tag}", (3, pad_shape[0], width), prefix_dtype
    )
    np.subtract(prefix[:, :, window:], prefix[:, :, :width], out=spans)
    # flat gathers are addressed against the (possibly larger) parent buffer
    # so that smaller pyramid levels keep zero-copy views
    parent = spans.base if spans.base is not None else spans
    stride = parent.shape[2]
    plane = parent.shape[1] * stride
    flat = parent.reshape(-1)
    gather = (ys[:, None] + np.arange(window, dtype=np.int64)[None, :]) * stride + xs[
        :, None
    ]
    sums = np.empty((3, xs.size), dtype=np.float64)
    for channel in range(3):
        sums[channel] = np.take(flat, gather + channel * plane).sum(axis=1)
    sxx, syy, sxy = sums[0], sums[1], sums[2]
    det = sxx * syy - sxy * sxy
    trace = sxx + syy
    return det - k * trace * trace


def harris_scores_at(
    image: GrayImage,
    points: Iterable[tuple[int, int]],
    k: float = HARRIS_K,
    block_radius: int = HARRIS_BLOCK_RADIUS,
) -> List[float]:
    """Return Harris scores for the given ``(x, y)`` points.

    Vectorised: gathers from the sparse integral-image path instead of
    building the full response map and looping (values are bit-identical to
    ``harris_response_map(image)[y, x]``).
    """
    pairs = [(x, y) for x, y in points]
    if not pairs:
        return []
    coords = np.asarray(pairs)
    if not np.issubdtype(coords.dtype, np.integer):
        raise FeatureError("harris_scores_at expects integer pixel coordinates")
    coords = coords.astype(np.int64).reshape(-1, 2)
    scores = harris_scores_sparse(
        image, coords[:, 0], coords[:, 1], k=k, block_radius=block_radius
    )
    return scores.tolist()
