"""Harris corner response.

The FAST Detection module computes a Harris score for every detected FAST
keypoint; the Heap later keeps only the ``N`` best-scoring features.  The
Harris response of a pixel is

    R = det(M) - k * trace(M)^2

where ``M`` is the second-moment matrix of image gradients accumulated over a
small window around the pixel.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..errors import FeatureError
from ..image import GrayImage
from ..image.filters import sobel_gradients

#: Standard Harris sensitivity constant.
HARRIS_K: float = 0.04
#: Half-size of the accumulation window (7x7 window -> block_radius = 3),
#: matching the 7x7 pixel patch the hardware FAST/Harris unit consumes.
HARRIS_BLOCK_RADIUS: int = 3


def harris_response_map(
    image: GrayImage, k: float = HARRIS_K, block_radius: int = HARRIS_BLOCK_RADIUS
) -> np.ndarray:
    """Return the Harris response for every pixel of ``image``.

    The result is a float64 array of the same shape.  Values near the border
    (within ``block_radius + 1``) are valid but accumulated over a clipped
    window, exactly like a hardware window that clamps at image edges.
    """
    if block_radius < 1:
        raise FeatureError("block_radius must be >= 1")
    gx, gy = sobel_gradients(image)
    ixx = gx * gx
    iyy = gy * gy
    ixy = gx * gy
    window = 2 * block_radius + 1
    sxx = _box_filter(ixx, window)
    syy = _box_filter(iyy, window)
    sxy = _box_filter(ixy, window)
    det = sxx * syy - sxy * sxy
    trace = sxx + syy
    return det - k * trace * trace


def _box_filter(values: np.ndarray, window: int) -> np.ndarray:
    """Sum ``values`` over a ``window x window`` neighbourhood (edge-replicated)."""
    half = window // 2
    padded = np.pad(values, half, mode="edge")
    integral = np.zeros(
        (padded.shape[0] + 1, padded.shape[1] + 1), dtype=np.float64
    )
    integral[1:, 1:] = np.cumsum(np.cumsum(padded, axis=0), axis=1)
    h, w = values.shape
    top = integral[:h, :w]
    bottom = integral[window : window + h, window : window + w]
    right = integral[:h, window : window + w]
    left = integral[window : window + h, :w]
    return bottom - right - left + top


def harris_scores_at(
    image: GrayImage,
    points: Iterable[tuple[int, int]],
    k: float = HARRIS_K,
    block_radius: int = HARRIS_BLOCK_RADIUS,
) -> List[float]:
    """Return Harris scores for the given ``(x, y)`` points."""
    response = harris_response_map(image, k=k, block_radius=block_radius)
    scores = []
    for x, y in points:
        if not image.contains(x, y):
            raise FeatureError(f"point ({x}, {y}) outside image {image.shape}")
        scores.append(float(response[y, x]))
    return scores
