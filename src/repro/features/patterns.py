"""BRIEF test-location patterns.

A BRIEF descriptor is defined by two sets of 256 test locations
``L_S = (S_1 ... S_256)`` and ``L_D = (D_1 ... D_256)`` sampled around the
keypoint; bit ``i`` of the descriptor is 1 iff ``I(S_i) > I(D_i)`` on the
smoothed image.  This module provides

* :class:`BriefPattern` -- an immutable container of the location pairs,
* :func:`original_brief_pattern` -- the classic random Gaussian-sampled
  pattern used by ORB,
* :func:`rotated_pattern` -- exact rotation of a pattern by an angle
  (equation (2) of the paper),
* :class:`RotatedPatternLUT` -- the 30-angle pre-rotated lookup table used by
  the original ORB implementation (the baseline whose hardware cost RS-BRIEF
  removes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import DescriptorError

#: Number of discrete angles used by original ORB's pre-rotated pattern LUT.
ORB_LUT_ANGLES: int = 30


@dataclass(frozen=True)
class BriefPattern:
    """An ordered set of BRIEF test-location pairs.

    Attributes
    ----------
    s_locations, d_locations:
        ``(N, 2)`` arrays of ``(x, y)`` offsets from the keypoint centre for
        the first and second location of each test.
    patch_radius:
        All locations are guaranteed to lie within this radius.
    """

    s_locations: np.ndarray
    d_locations: np.ndarray
    patch_radius: int

    def __post_init__(self) -> None:
        s = np.asarray(self.s_locations, dtype=np.float64)
        d = np.asarray(self.d_locations, dtype=np.float64)
        if s.shape != d.shape or s.ndim != 2 or s.shape[1] != 2:
            raise DescriptorError(
                f"pattern locations must be matching (N, 2) arrays, got {s.shape} and {d.shape}"
            )
        if s.shape[0] == 0:
            raise DescriptorError("pattern must contain at least one test pair")
        limit = self.patch_radius + 1e-6
        if np.abs(s).max() > limit or np.abs(d).max() > limit:
            raise DescriptorError("pattern locations exceed the declared patch radius")
        object.__setattr__(self, "s_locations", s)
        object.__setattr__(self, "d_locations", d)

    @property
    def num_bits(self) -> int:
        return int(self.s_locations.shape[0])

    def rounded(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return integer-rounded locations (what the hardware addresses use)."""
        return (
            np.rint(self.s_locations).astype(np.int64),
            np.rint(self.d_locations).astype(np.int64),
        )

    def max_radius(self) -> float:
        """Return the largest Euclidean distance of any test location."""
        all_locations = np.vstack([self.s_locations, self.d_locations])
        return float(np.sqrt((all_locations**2).sum(axis=1)).max())


def _sample_gaussian_locations(
    count: int, patch_radius: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``count`` locations from an isotropic Gaussian, clipped to the patch."""
    sigma = patch_radius / 2.0
    locations = np.empty((count, 2), dtype=np.float64)
    filled = 0
    while filled < count:
        batch = rng.normal(0.0, sigma, size=(count * 2, 2))
        radii = np.sqrt((batch**2).sum(axis=1))
        inside = batch[radii <= patch_radius]
        take = min(count - filled, inside.shape[0])
        locations[filled : filled + take] = inside[:take]
        filled += take
    return locations


def original_brief_pattern(
    num_bits: int = 256, patch_radius: int = 15, seed: int = 2019
) -> BriefPattern:
    """Return the classic random BRIEF pattern (Gaussian-sampled pairs).

    This is the baseline pattern of the original ORB descriptor; eSLAM's
    RS-BRIEF replaces it with a rotationally symmetric construction.
    """
    if num_bits <= 0:
        raise DescriptorError("num_bits must be positive")
    rng = np.random.default_rng(seed)
    s = _sample_gaussian_locations(num_bits, patch_radius, rng)
    d = _sample_gaussian_locations(num_bits, patch_radius, rng)
    return BriefPattern(s, d, patch_radius)


def rotated_pattern(pattern: BriefPattern, angle_rad: float) -> BriefPattern:
    """Rotate every test location of ``pattern`` by ``angle_rad``.

    Implements equation (2): ``x' = x cos(t) - y sin(t)``,
    ``y' = y cos(t) + x sin(t)``.
    """
    cos_a, sin_a = math.cos(angle_rad), math.sin(angle_rad)
    rotation = np.array([[cos_a, -sin_a], [sin_a, cos_a]])
    return BriefPattern(
        pattern.s_locations @ rotation.T,
        pattern.d_locations @ rotation.T,
        # rotation preserves radii, but rounding can push a location a hair
        # past the original bound; keep a one-pixel guard
        pattern.patch_radius,
    )


class RotatedPatternLUT:
    """Pre-rotated BRIEF patterns at discrete angles (original ORB approach).

    Original ORB discretises orientation into :data:`ORB_LUT_ANGLES` values
    (every 12 degrees) and stores one rotated copy of the pattern per angle.
    eSLAM's criticism is that storing 30 patterns of 512 locations each is a
    significant FPGA memory cost; the class exposes :meth:`storage_locations`
    so the hardware-cost ablation can quantify that.
    """

    def __init__(
        self,
        base_pattern: BriefPattern,
        num_angles: int = ORB_LUT_ANGLES,
    ) -> None:
        if num_angles <= 0:
            raise DescriptorError("num_angles must be positive")
        self.base_pattern = base_pattern
        self.num_angles = num_angles
        self._patterns = [
            rotated_pattern(base_pattern, 2.0 * math.pi * i / num_angles)
            for i in range(num_angles)
        ]

    def angle_index(self, angle_rad: float) -> int:
        """Return the LUT index nearest to ``angle_rad``."""
        two_pi = 2.0 * math.pi
        return int(round((angle_rad % two_pi) / (two_pi / self.num_angles))) % self.num_angles

    def pattern_for_angle(self, angle_rad: float) -> BriefPattern:
        """Return the pre-rotated pattern closest to ``angle_rad``."""
        return self._patterns[self.angle_index(angle_rad)]

    def pattern_at(self, index: int) -> BriefPattern:
        if not 0 <= index < self.num_angles:
            raise DescriptorError(f"index {index} outside [0, {self.num_angles})")
        return self._patterns[index]

    def rounded_stack(self) -> Tuple[np.ndarray, np.ndarray]:
        """All pre-rotated patterns as ``(num_angles, num_bits, 2)`` int arrays.

        This is the batch-gather view of the LUT: the vectorized compute
        backend indexes it with a per-keypoint angle index to evaluate every
        keypoint's rotated pattern in a single fancy-indexing pass.  Built
        lazily and cached, mirroring the on-chip ROM the hardware keeps.
        """
        cached = getattr(self, "_rounded_stack", None)
        if cached is None:
            s_stack = np.stack([p.rounded()[0] for p in self._patterns])
            d_stack = np.stack([p.rounded()[1] for p in self._patterns])
            cached = (s_stack, d_stack)
            self._rounded_stack = cached
        return cached

    def angle_indices(self, angles_rad: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`angle_index` for an array of angles."""
        two_pi = 2.0 * math.pi
        angles = np.mod(np.asarray(angles_rad, dtype=np.float64), two_pi)
        return np.rint(angles / (two_pi / self.num_angles)).astype(np.int64) % self.num_angles

    def storage_locations(self) -> int:
        """Total number of (x, y) locations the LUT must store on chip."""
        return self.num_angles * 2 * self.base_pattern.num_bits

    def max_discretization_error_rad(self) -> float:
        """Worst-case angular error introduced by the discretisation."""
        return math.pi / self.num_angles

    def __len__(self) -> int:
        return self.num_angles

    def patterns(self) -> Sequence[BriefPattern]:
        return tuple(self._patterns)
