"""Software ORB feature extractor.

This is the functional reference for the accelerated ORB Extractor: it runs
FAST detection, Harris scoring, non-maximum suppression, Gaussian smoothing,
orientation computation, BRIEF description (RS-BRIEF or original ORB) and
best-N filtering over a multi-scale image pyramid.

Two workflow orders are supported, matching Section 3.1 of the paper:

* ``original``   -- detect -> filter (keep best N) -> describe.  This is the
  order of the original ORB implementation; on hardware it forces the
  descriptor pipeline to idle until filtering completes and requires caching
  every candidate keypoint's neighbourhood.
* ``rescheduled`` -- detect -> describe -> filter.  eSLAM's streaming order:
  descriptors are computed for *all* M detected keypoints as they stream by
  and the heap keeps the best N at the end.  The extra ``M - N`` descriptor
  computations are the overhead the paper trades for the eliminated idle
  time and cache.

Both orders produce the same final feature set whenever the filtering
criterion depends only on the Harris score (which it does); tests assert
this equivalence, and :class:`ExtractionProfile` records the operation
counts (extra descriptors, cached candidates) that differ between them and
feed the hardware/runtime models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..config import ExtractorConfig
from ..errors import FeatureError
from ..image import GrayImage, ImagePyramid, gaussian_blur
from .brief import DescriptorEngine, make_descriptor_engine
from .fast import fast_corner_mask
from .harris import harris_response_map
from .heap_filter import BoundedScoreHeap
from .keypoint import Feature, Keypoint
from .nms import non_maximum_suppression
from .orientation import compute_orientation


@dataclass
class ExtractionProfile:
    """Operation counts recorded while extracting features from one image.

    These counts drive the platform runtime models and the hardware cycle
    model: they are the workload description, independent of how long this
    Python process happened to take.
    """

    pixels_processed: int = 0
    keypoints_detected: int = 0
    keypoints_after_nms: int = 0
    descriptors_computed: int = 0
    features_retained: int = 0
    heap_comparisons: int = 0
    per_level_keypoints: List[int] = field(default_factory=list)
    workflow: str = "rescheduled"

    @property
    def extra_descriptors(self) -> int:
        """Descriptors computed beyond the retained set (rescheduling overhead)."""
        return max(0, self.descriptors_computed - self.features_retained)


@dataclass
class ExtractionResult:
    """Features extracted from one image plus the associated profile."""

    features: List[Feature]
    profile: ExtractionProfile

    def descriptor_matrix(self) -> np.ndarray:
        """Return all descriptors stacked as an ``(N, 32)`` uint8 matrix."""
        if not self.features:
            return np.zeros((0, 32), dtype=np.uint8)
        return np.stack([f.descriptor for f in self.features])

    def keypoint_array(self) -> np.ndarray:
        """Return level-0 keypoint coordinates as an ``(N, 2)`` float array."""
        if not self.features:
            return np.zeros((0, 2), dtype=np.float64)
        return np.array([[f.x0, f.y0] for f in self.features], dtype=np.float64)


class OrbExtractor:
    """Full software ORB extractor (the functional model of the accelerator).

    Parameters
    ----------
    config:
        Extractor configuration; ``config.use_rs_brief`` selects the
        descriptor strategy and ``config.rescheduled_workflow`` the workflow
        order.
    """

    def __init__(self, config: ExtractorConfig | None = None) -> None:
        self.config = config or ExtractorConfig()
        self.descriptor_engine: DescriptorEngine = make_descriptor_engine(
            self.config.use_rs_brief, self.config.descriptor
        )
        self._border = max(
            self.config.fast.border,
            self.descriptor_engine.patch_radius() + 1,
            self.config.descriptor.patch_radius + 1,
        )

    # -- public API -------------------------------------------------------
    def extract(self, image: GrayImage) -> ExtractionResult:
        """Extract up to ``config.max_features`` ORB features from ``image``."""
        pyramid = ImagePyramid(image, self.config.pyramid)
        profile = ExtractionProfile(
            workflow="rescheduled" if self.config.rescheduled_workflow else "original"
        )
        profile.pixels_processed = pyramid.total_pixels()
        if self.config.rescheduled_workflow:
            features = self._extract_rescheduled(pyramid, profile)
        else:
            features = self._extract_original(pyramid, profile)
        profile.features_retained = len(features)
        return ExtractionResult(features=features, profile=profile)

    # -- per-level candidate detection --------------------------------------
    def _detect_level_candidates(
        self, level_image: GrayImage, level: int, profile: ExtractionProfile
    ) -> List[Keypoint]:
        """Run FAST + Harris + NMS on one pyramid level."""
        corner_mask = fast_corner_mask(level_image, self.config.fast)
        profile.keypoints_detected += int(corner_mask.sum())
        if not corner_mask.any():
            profile.per_level_keypoints.append(0)
            return []
        scores = harris_response_map(level_image)
        survivors = non_maximum_suppression(corner_mask, scores, radius=1)
        ys, xs = np.nonzero(survivors)
        keypoints = []
        for x, y in zip(xs, ys):
            x, y = int(x), int(y)
            if not level_image.contains(x, y, border=self._border):
                continue
            keypoints.append(Keypoint(x=x, y=y, score=float(scores[y, x]), level=level))
        profile.keypoints_after_nms += len(keypoints)
        profile.per_level_keypoints.append(len(keypoints))
        return keypoints

    def _describe(self, smoothed: GrayImage, keypoint: Keypoint) -> Optional[Feature]:
        """Compute orientation + descriptor for one keypoint."""
        radius = self.config.descriptor.patch_radius
        if not smoothed.contains(keypoint.x, keypoint.y, border=radius):
            return None
        orientation_bin, orientation_rad = compute_orientation(
            smoothed, keypoint.x, keypoint.y, radius=radius
        )
        oriented = keypoint.with_orientation(orientation_bin, orientation_rad)
        descriptor = self.descriptor_engine.describe(smoothed, oriented)
        scale = self.config.pyramid.level_scale(keypoint.level)
        x0, y0 = oriented.level0_coordinates(scale)
        return Feature(keypoint=oriented, descriptor=descriptor, x0=x0, y0=y0)

    # -- the two workflow orders --------------------------------------------
    def _extract_rescheduled(
        self, pyramid: ImagePyramid, profile: ExtractionProfile
    ) -> List[Feature]:
        """eSLAM order: describe every detected keypoint, then heap-filter."""
        heap: BoundedScoreHeap[Feature] = BoundedScoreHeap(self.config.max_features)
        for level in pyramid:
            smoothed = gaussian_blur(level.image)
            for keypoint in self._detect_level_candidates(level.image, level.level, profile):
                feature = self._describe(smoothed, keypoint)
                if feature is None:
                    continue
                profile.descriptors_computed += 1
                heap.offer(feature.score, feature)
        profile.heap_comparisons = heap.stats.comparisons
        return heap.items_by_score()

    def _extract_original(
        self, pyramid: ImagePyramid, profile: ExtractionProfile
    ) -> List[Feature]:
        """Original order: collect all keypoints, filter to best N, then describe."""
        candidates: List[tuple[Keypoint, GrayImage]] = []
        for level in pyramid:
            smoothed = gaussian_blur(level.image)
            for keypoint in self._detect_level_candidates(level.image, level.level, profile):
                candidates.append((keypoint, smoothed))
        candidates.sort(key=lambda item: -item[0].score)
        retained = candidates[: self.config.max_features]
        features: List[Feature] = []
        for keypoint, smoothed in retained:
            feature = self._describe(smoothed, keypoint)
            if feature is None:
                continue
            profile.descriptors_computed += 1
            features.append(feature)
        features.sort(key=lambda f: -f.score)
        return features


def extract_features(image: GrayImage, config: ExtractorConfig | None = None) -> ExtractionResult:
    """Convenience one-shot feature extraction with a fresh extractor."""
    return OrbExtractor(config).extract(image)


def check_workflow_equivalence(
    image: GrayImage, config: ExtractorConfig | None = None
) -> int:
    """Return how many retained keypoint positions differ between workflows.

    The rescheduled and original workflows must retain the same keypoints
    (filtering depends only on Harris scores).  Descriptor values are
    identical as well because description is a pure function of (image,
    keypoint).  Returns the size of the symmetric difference of the retained
    ``(level, x, y)`` sets; 0 means the workflows agree exactly.
    """
    cfg = config or ExtractorConfig()
    rescheduled = OrbExtractor(
        ExtractorConfig(
            image_width=cfg.image_width,
            image_height=cfg.image_height,
            pyramid=cfg.pyramid,
            fast=cfg.fast,
            descriptor=cfg.descriptor,
            max_features=cfg.max_features,
            use_rs_brief=cfg.use_rs_brief,
            rescheduled_workflow=True,
        )
    ).extract(image)
    original = OrbExtractor(
        ExtractorConfig(
            image_width=cfg.image_width,
            image_height=cfg.image_height,
            pyramid=cfg.pyramid,
            fast=cfg.fast,
            descriptor=cfg.descriptor,
            max_features=cfg.max_features,
            use_rs_brief=cfg.use_rs_brief,
            rescheduled_workflow=False,
        )
    ).extract(image)
    keys_a = {(f.keypoint.level, f.keypoint.x, f.keypoint.y) for f in rescheduled.features}
    keys_b = {(f.keypoint.level, f.keypoint.x, f.keypoint.y) for f in original.features}
    return len(keys_a.symmetric_difference(keys_b))
