"""Software ORB feature extractor.

This is the functional reference for the accelerated ORB Extractor: it runs
FAST detection, Harris scoring, non-maximum suppression, Gaussian smoothing,
orientation computation, BRIEF description (RS-BRIEF or original ORB) and
best-N filtering over a multi-scale image pyramid.

Two workflow orders are supported, matching Section 3.1 of the paper:

* ``original``   -- detect -> filter (keep best N) -> describe.  This is the
  order of the original ORB implementation; on hardware it forces the
  descriptor pipeline to idle until filtering completes and requires caching
  every candidate keypoint's neighbourhood.
* ``rescheduled`` -- detect -> describe -> filter.  eSLAM's streaming order:
  descriptors are computed for *all* M detected keypoints as they stream by
  and the heap keeps the best N at the end.  The extra ``M - N`` descriptor
  computations are the overhead the paper trades for the eliminated idle
  time and cache.

Both orders produce the same final feature set whenever the filtering
criterion depends only on the Harris score (which it does); tests assert
this equivalence, and :class:`ExtractionProfile` records the operation
counts (extra descriptors, cached candidates) that differ between them and
feed the hardware/runtime models.

The per-keypoint compute (orientation + description) is delegated to a
pluggable :class:`~repro.backends.KeypointBackend` selected by
``ExtractorConfig.backend``: the default ``vectorized`` backend batches whole
pyramid levels through numpy while ``reference`` keeps the scalar
ground-truth path; both are bit-identical (see ``docs/backends.md``).
The full-frame detection pass (FAST + Harris + NMS + smoothing) is likewise
delegated to a :class:`~repro.frontend.DetectionEngine` selected by
``ExtractorConfig.frontend`` (see ``docs/frontend.md``), and the multi-scale
pyramid those engines consume comes from a
:class:`~repro.pyramid.PyramidProvider` selected by
``ExtractorConfig.pyramid.provider`` (eager / streaming / shared-cache, all
bit-identical; see ``docs/pyramid.md``).  Candidates move through the
extractor as coordinate/score arrays, and :class:`Feature` objects are only
materialised for the retained set.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

import numpy as np

from ..config import ExtractorConfig
from ..image import GrayImage, ImagePyramid, within_border
from ..telemetry import current_tracer
from .brief import DescriptorEngine
from .heap_filter import BoundedScoreHeap
from .keypoint import Feature, Keypoint


@dataclass
class ExtractionProfile:
    """Operation counts recorded while extracting features from one image.

    These counts drive the platform runtime models and the hardware cycle
    model: they are the workload description, independent of how long this
    Python process happened to take.
    """

    pixels_processed: int = 0
    keypoints_detected: int = 0
    keypoints_after_nms: int = 0
    descriptors_computed: int = 0
    features_retained: int = 0
    heap_comparisons: int = 0
    per_level_keypoints: List[int] = field(default_factory=list)
    workflow: str = "rescheduled"

    @property
    def extra_descriptors(self) -> int:
        """Descriptors computed beyond the retained set (rescheduling overhead)."""
        return max(0, self.descriptors_computed - self.features_retained)


@dataclass
class FeatureArrays:
    """The retained feature set as dense, contiguous arrays (length ``N``).

    This is the wire-format view of an :class:`ExtractionResult`: every
    per-:class:`~repro.features.keypoint.Feature` attribute flattened into
    one array, so a result can be packed into flat buffers
    (:mod:`repro.serving.resultpack`), shipped across a process boundary
    without pickling, and rebuilt bit-identical on the other side.
    ``orientation_bins`` uses ``-1`` and ``orientation_rads`` uses ``NaN``
    for features whose orientation was never computed.
    """

    descriptors: np.ndarray  # (N, D) uint8 descriptor bytes
    levels: np.ndarray  # (N,) int64 pyramid level
    xs: np.ndarray  # (N,) int64 level-local x
    ys: np.ndarray  # (N,) int64 level-local y
    scores: np.ndarray  # (N,) float64 Harris score
    orientation_bins: np.ndarray  # (N,) int64, -1 = not computed
    orientation_rads: np.ndarray  # (N,) float64, NaN = not computed
    x0: np.ndarray  # (N,) float64 level-0 x
    y0: np.ndarray  # (N,) float64 level-0 y

    def __len__(self) -> int:
        return int(self.descriptors.shape[0])

    @classmethod
    def from_features(cls, features: List[Feature]) -> "FeatureArrays":
        """Flatten per-feature objects into dense arrays."""
        if not features:
            return cls.empty()
        return cls(
            descriptors=np.stack([f.descriptor for f in features]),
            levels=np.array([f.keypoint.level for f in features], dtype=np.int64),
            xs=np.array([f.keypoint.x for f in features], dtype=np.int64),
            ys=np.array([f.keypoint.y for f in features], dtype=np.int64),
            scores=np.array([f.score for f in features], dtype=np.float64),
            orientation_bins=np.array(
                [
                    -1 if f.keypoint.orientation_bin is None else f.keypoint.orientation_bin
                    for f in features
                ],
                dtype=np.int64,
            ),
            orientation_rads=np.array(
                [
                    np.nan if f.keypoint.orientation_rad is None else f.keypoint.orientation_rad
                    for f in features
                ],
                dtype=np.float64,
            ),
            x0=np.array([f.x0 for f in features], dtype=np.float64),
            y0=np.array([f.y0 for f in features], dtype=np.float64),
        )

    @classmethod
    def empty(cls, descriptor_width: int = 32) -> "FeatureArrays":
        return cls(
            descriptors=np.zeros((0, descriptor_width), dtype=np.uint8),
            levels=np.zeros(0, dtype=np.int64),
            xs=np.zeros(0, dtype=np.int64),
            ys=np.zeros(0, dtype=np.int64),
            scores=np.zeros(0, dtype=np.float64),
            orientation_bins=np.zeros(0, dtype=np.int64),
            orientation_rads=np.zeros(0, dtype=np.float64),
            x0=np.zeros(0, dtype=np.float64),
            y0=np.zeros(0, dtype=np.float64),
        )

    def build_features(self) -> List[Feature]:
        """Materialise per-feature objects, bit-identical to the originals."""
        features = []
        for index in range(len(self)):
            bin_value = int(self.orientation_bins[index])
            rad_value = float(self.orientation_rads[index])
            keypoint = Keypoint(
                x=int(self.xs[index]),
                y=int(self.ys[index]),
                score=float(self.scores[index]),
                level=int(self.levels[index]),
                orientation_bin=None if bin_value < 0 else bin_value,
                orientation_rad=None if np.isnan(rad_value) else rad_value,
            )
            features.append(
                Feature(
                    keypoint=keypoint,
                    descriptor=self.descriptors[index],
                    x0=float(self.x0[index]),
                    y0=float(self.y0[index]),
                )
            )
        return features


class ExtractionResult:
    """Features extracted from one image plus the associated profile.

    Besides the per-feature objects, the result exposes the retained set as
    dense arrays (descriptor matrix, level-0 coordinates, scores, levels)
    which the SLAM front-end consumes directly on its hot path; the arrays
    are built once on first access and cached.

    A result can be constructed either from per-feature objects (the
    extractor path) or **arrays-first** via :meth:`from_arrays` (the
    zero-copy result transport, :mod:`repro.serving.resultpack`).  In the
    arrays-first form the ``features`` list is built lazily on first
    access, so consumers that only read the dense arrays — the
    server→:class:`~repro.slam.tracker.Tracker` hot path — never pay for
    materialising ``N`` :class:`~repro.features.keypoint.Feature` objects
    at all.
    """

    def __init__(
        self,
        features: Optional[List[Feature]] = None,
        profile: Optional[ExtractionProfile] = None,
        arrays: Optional[FeatureArrays] = None,
    ) -> None:
        if (features is None) == (arrays is None):
            raise ValueError(
                "ExtractionResult takes exactly one of features= or arrays="
            )
        if profile is None:
            raise ValueError("ExtractionResult requires a profile")
        self._features = features
        self._arrays = arrays
        self.profile = profile
        # lazily built array caches (features-backed results only)
        self._descriptors: Optional[np.ndarray] = None
        self._keypoints_xy: Optional[np.ndarray] = None
        self._scores: Optional[np.ndarray] = None
        self._levels: Optional[np.ndarray] = None

    @classmethod
    def from_arrays(
        cls, arrays: FeatureArrays, profile: ExtractionProfile
    ) -> "ExtractionResult":
        """Arrays-first constructor: per-feature objects are built lazily."""
        return cls(profile=profile, arrays=arrays)

    @property
    def features(self) -> List[Feature]:
        """The retained features as objects (materialised lazily)."""
        if self._features is None:
            self._features = self._arrays.build_features()
        return self._features

    @property
    def feature_count(self) -> int:
        """Number of retained features, without materialising them."""
        if self._features is not None:
            return len(self._features)
        return len(self._arrays)

    def feature_arrays(self) -> FeatureArrays:
        """The retained set as dense arrays (built once, cached)."""
        if self._arrays is None:
            self._arrays = FeatureArrays.from_features(self._features)
        return self._arrays

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExtractionResult):
            return NotImplemented
        # feature_records() is the repo-wide bit-identity key; comparing
        # Feature objects directly would trip over ndarray truthiness
        return (
            self.feature_records() == other.feature_records()
            and self.profile == other.profile
        )

    def __repr__(self) -> str:
        return (
            f"ExtractionResult(feature_count={self.feature_count}, "
            f"profile={self.profile!r})"
        )

    def descriptor_matrix(self) -> np.ndarray:
        """Return all descriptors stacked as an ``(N, 32)`` uint8 matrix."""
        if self._arrays is not None:
            return self._arrays.descriptors
        if self._descriptors is None:
            if not self.features:
                self._descriptors = np.zeros((0, 32), dtype=np.uint8)
            else:
                self._descriptors = np.stack([f.descriptor for f in self.features])
        return self._descriptors

    def keypoint_array(self) -> np.ndarray:
        """Return level-0 keypoint coordinates as an ``(N, 2)`` float array."""
        if self._keypoints_xy is None:
            if self._arrays is not None:
                self._keypoints_xy = np.column_stack(
                    (self._arrays.x0, self._arrays.y0)
                )
            elif not self.features:
                self._keypoints_xy = np.zeros((0, 2), dtype=np.float64)
            else:
                self._keypoints_xy = np.array(
                    [[f.x0, f.y0] for f in self.features], dtype=np.float64
                )
        return self._keypoints_xy

    def score_array(self) -> np.ndarray:
        """Harris scores of the retained features, ``(N,)`` float64."""
        if self._arrays is not None:
            return self._arrays.scores
        if self._scores is None:
            self._scores = np.array([f.score for f in self.features], dtype=np.float64)
        return self._scores

    def level_array(self) -> np.ndarray:
        """Pyramid level of each retained feature, ``(N,)`` int64."""
        if self._arrays is not None:
            return self._arrays.levels
        if self._levels is None:
            self._levels = np.array(
                [f.keypoint.level for f in self.features], dtype=np.int64
            )
        return self._levels

    def feature_records(self) -> List[tuple]:
        """Hashable per-feature records, in retained order.

        The bit-identity comparison key shared by every parity check in the
        repo — engine/backend parity, hardware-model parity, thread- and
        process-served extraction (``tests/test_serving.py``,
        ``tests/test_cluster.py``) — so the definition of "identical
        features" cannot drift between suites.  Two results are bit-identical
        iff their record lists compare equal.
        """
        return [
            (
                f.keypoint.level,
                f.keypoint.x,
                f.keypoint.y,
                f.score,
                f.keypoint.orientation_bin,
                f.keypoint.orientation_rad,
                f.descriptor.tobytes(),
                f.x0,
                f.y0,
            )
            for f in self.features
        ]


class OrbExtractor:
    """Full software ORB extractor (the functional model of the accelerator).

    Parameters
    ----------
    config:
        Extractor configuration; ``config.use_rs_brief`` selects the
        descriptor strategy, ``config.rescheduled_workflow`` the workflow
        order and ``config.backend`` the keypoint compute backend.
    """

    def __init__(
        self, config: ExtractorConfig | None = None, pyramid_cache=None
    ) -> None:
        # imported here (not at module scope) so that repro.features,
        # repro.backends, repro.frontend and repro.pyramid can be imported
        # in any order without a cycle
        from ..backends import create_backend
        from ..frontend import create_engine
        from ..pyramid import create_provider

        self.config = config or ExtractorConfig()
        self.backend = create_backend(self.config.backend, self.config)
        self.frontend = create_engine(self.config.frontend, self.config)
        self.pyramid_provider = create_provider(
            self.config.pyramid.provider, self.config, cache=pyramid_cache
        )
        self.descriptor_engine: DescriptorEngine = self.backend.descriptor_engine
        self._border = max(
            self.config.fast.border,
            self.descriptor_engine.patch_radius() + 1,
            self.config.descriptor.patch_radius + 1,
        )

    # -- public API -------------------------------------------------------
    def extract(
        self,
        image: GrayImage,
        frame_id: int | None = None,
        pyramid: "ImagePyramid | None" = None,
    ) -> ExtractionResult:
        """Extract up to ``config.max_features`` ORB features from ``image``.

        ``frame_id`` keys cross-consumer pyramid reuse for the ``shared``
        provider (cluster workers pass the frame's cache key); local
        providers ignore it.  ``pyramid`` optionally supplies an
        already-acquired pyramid over ``image`` — the cluster's zero-copy
        fast path hands workers a cache attachment directly, so extraction
        must not re-acquire (or release) one through the provider; the
        caller keeps ownership of a supplied pyramid.
        """
        tracer = current_tracer()
        owned = pyramid is None
        if owned:
            with tracer.span("acquire_pyramid", frame=frame_id):
                pyramid = self.pyramid_provider.acquire(image, frame_id)
        try:
            profile = ExtractionProfile(
                workflow="rescheduled" if self.config.rescheduled_workflow else "original"
            )
            profile.pixels_processed = pyramid.total_pixels()
            if self.config.rescheduled_workflow:
                features = self._extract_rescheduled(pyramid, profile)
            else:
                features = self._extract_original(pyramid, profile)
            profile.features_retained = len(features)
            if tracer.enabled:
                # the engine's workload counters, attached to the timeline so
                # a slow extract span can be explained without a second run
                tracer.instant(
                    "profile",
                    frame=frame_id,
                    keypoints_detected=profile.keypoints_detected,
                    descriptors_computed=profile.descriptors_computed,
                    features_retained=profile.features_retained,
                )
            return ExtractionResult(features=features, profile=profile)
        finally:
            if owned:
                self.pyramid_provider.release(pyramid)

    def close(self) -> None:
        """Release provider-owned resources (a self-created shared pyramid cache)."""
        self.pyramid_provider.close()

    # -- per-level candidate detection --------------------------------------
    def _detect_level_candidates(
        self, level_image: GrayImage, level: int, profile: ExtractionProfile
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run the detection engine on one pyramid level; return candidate arrays.

        The engine performs the fused FAST + Harris + NMS pass (see
        :mod:`repro.frontend`); this wrapper applies the descriptor-border
        mask and updates the workload profile.  Returns ``(xs, ys, scores)``
        of the NMS survivors that keep a full descriptor border inside the
        level, filtered by array masking (no per-survivor Python loop).
        """
        empty = (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
        )
        xs, ys, scores, corners_detected = self.frontend.detect_with_count(level_image)
        profile.keypoints_detected += corners_detected
        if xs.size == 0:
            profile.per_level_keypoints.append(0)
            return empty
        inside = within_border(xs, ys, level_image.shape, self._border)
        xs = xs[inside]
        ys = ys[inside]
        profile.keypoints_after_nms += int(xs.size)
        profile.per_level_keypoints.append(int(xs.size))
        if xs.size == 0:
            return empty
        return xs, ys, scores[inside]

    def _feature_from_batch(self, batch, index: int, level: int) -> Feature:
        """Materialise one retained :class:`Feature` from a described batch."""
        keypoint = Keypoint(
            x=int(batch.xs[index]),
            y=int(batch.ys[index]),
            score=float(batch.scores[index]),
            level=level,
            orientation_bin=int(batch.orientation_bins[index]),
            orientation_rad=float(batch.orientation_rads[index]),
        )
        scale = self.config.pyramid.level_scale(level)
        x0, y0 = keypoint.level0_coordinates(scale)
        return Feature(
            keypoint=keypoint, descriptor=batch.descriptors[index], x0=x0, y0=y0
        )

    # -- the two workflow orders --------------------------------------------
    def _extract_rescheduled(
        self, pyramid: ImagePyramid, profile: ExtractionProfile
    ) -> List[Feature]:
        """eSLAM order: describe every detected keypoint, then heap-filter.

        Each level's candidates are described as one batch by the backend and
        bulk-inserted into the heap; only the retained winners become
        :class:`Feature` objects.
        """
        tracer = current_tracer()
        heap: BoundedScoreHeap[Tuple[int, int]] = BoundedScoreHeap(self.config.max_features)
        batches: List[Tuple[int, object]] = []
        for level in pyramid:
            with tracer.span("smooth", level=level.level):
                smoothed = self.frontend.smooth(level.image)
            with tracer.span("detect", level=level.level):
                xs, ys, scores = self._detect_level_candidates(level.image, level.level, profile)
            if xs.size == 0:
                continue
            with tracer.span("describe", level=level.level):
                batch = self.backend.describe(smoothed, xs, ys, scores)
            if batch.size == 0:
                continue
            profile.descriptors_computed += batch.size
            batch_index = len(batches)
            batches.append((level.level, batch))
            heap.offer_batch(
                batch.scores, [(batch_index, row) for row in range(batch.size)]
            )
        profile.heap_comparisons = heap.stats.comparisons
        features: List[Feature] = []
        with tracer.span("filter"):
            for batch_index, row in heap.items_by_score():
                level, batch = batches[batch_index]
                features.append(self._feature_from_batch(batch, row, level))
        return features

    def _extract_original(
        self, pyramid: ImagePyramid, profile: ExtractionProfile
    ) -> List[Feature]:
        """Original order: collect all keypoints, filter to best N, then describe."""
        tracer = current_tracer()
        level_data = []
        for level in pyramid:
            with tracer.span("smooth", level=level.level):
                smoothed = self.frontend.smooth(level.image)
            with tracer.span("detect", level=level.level):
                xs, ys, scores = self._detect_level_candidates(level.image, level.level, profile)
            level_data.append((level.level, smoothed, xs, ys, scores))
        all_scores = np.concatenate([entry[4] for entry in level_data])
        if all_scores.size == 0:
            return []
        level_ids = np.concatenate(
            [np.full(entry[4].size, index, dtype=np.int64) for index, entry in enumerate(level_data)]
        )
        local_indices = np.concatenate(
            [np.arange(entry[4].size, dtype=np.int64) for entry in level_data]
        )
        # global best-N filter: stable sort matches the streaming tie-breaking
        order = np.argsort(-all_scores, kind="stable")
        retained = order[: self.config.max_features]
        # describe the retained candidates level by level (one batch each) and
        # scatter the results back into score-rank order
        by_rank: List[Optional[Feature]] = [None] * int(retained.size)
        for index, (level, smoothed, xs, ys, scores) in enumerate(level_data):
            member_ranks = np.nonzero(level_ids[retained] == index)[0]
            if member_ranks.size == 0:
                continue
            selection = local_indices[retained[member_ranks]]
            with tracer.span("describe", level=level):
                batch = self.backend.describe(
                    smoothed, xs[selection], ys[selection], scores[selection]
                )
            profile.descriptors_computed += batch.size
            for row in range(batch.size):
                rank = int(member_ranks[int(batch.kept[row])])
                by_rank[rank] = self._feature_from_batch(batch, row, level)
        return [feature for feature in by_rank if feature is not None]


def extract_features(image: GrayImage, config: ExtractorConfig | None = None) -> ExtractionResult:
    """Convenience one-shot feature extraction with a fresh extractor."""
    return OrbExtractor(config).extract(image)


def check_workflow_equivalence(
    image: GrayImage, config: ExtractorConfig | None = None
) -> int:
    """Return how many retained keypoint positions differ between workflows.

    The rescheduled and original workflows must retain the same keypoints
    (filtering depends only on Harris scores).  Descriptor values are
    identical as well because description is a pure function of (image,
    keypoint).  Returns the size of the symmetric difference of the retained
    ``(level, x, y)`` sets; 0 means the workflows agree exactly.
    """
    cfg = config or ExtractorConfig()
    rescheduled = OrbExtractor(replace(cfg, rescheduled_workflow=True)).extract(image)
    original = OrbExtractor(replace(cfg, rescheduled_workflow=False)).extract(image)
    keys_a = {(f.keypoint.level, f.keypoint.x, f.keypoint.y) for f in rescheduled.features}
    keys_b = {(f.keypoint.level, f.keypoint.x, f.keypoint.y) for f in original.features}
    return len(keys_a.symmetric_difference(keys_b))
