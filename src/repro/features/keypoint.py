"""Keypoint and feature containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import DescriptorError


@dataclass(frozen=True)
class Keypoint:
    """A detected corner before description.

    Attributes
    ----------
    x, y:
        Pixel coordinates in the pyramid level where the keypoint was found.
    score:
        Harris corner response used for filtering (higher is better).
    level:
        Pyramid level index (0 = full resolution).
    orientation_bin:
        Discretised orientation label in ``[0, 32)`` where bin ``n`` means
        ``n * 11.25`` degrees, or ``None`` before orientation computation.
    orientation_rad:
        Continuous orientation in radians, or ``None`` before computation.
    """

    x: int
    y: int
    score: float
    level: int = 0
    orientation_bin: Optional[int] = None
    orientation_rad: Optional[float] = None

    def with_orientation(self, orientation_bin: int, orientation_rad: float) -> "Keypoint":
        """Return a copy of this keypoint annotated with its orientation."""
        return Keypoint(
            x=self.x,
            y=self.y,
            score=self.score,
            level=self.level,
            orientation_bin=orientation_bin,
            orientation_rad=orientation_rad,
        )

    def level0_coordinates(self, scale: float) -> tuple[float, float]:
        """Return coordinates mapped back to the level-0 image."""
        return self.x * scale, self.y * scale


@dataclass(frozen=True)
class Feature:
    """A fully described ORB feature: keypoint + 256-bit binary descriptor.

    The descriptor is stored as a ``uint8`` array of 32 bytes, bit 0 of byte 0
    being the first BRIEF test, matching the bit ordering the hardware BRIEF
    Rotator shifts by multiples of 8 bits.
    """

    keypoint: Keypoint
    descriptor: np.ndarray
    x0: float = field(default=None)  # type: ignore[assignment]
    y0: float = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        descriptor = np.asarray(self.descriptor, dtype=np.uint8)
        if descriptor.ndim != 1 or descriptor.size == 0 or descriptor.size % 4 != 0:
            raise DescriptorError(
                f"descriptor must be a non-empty 1-D byte array, got shape {descriptor.shape}"
            )
        object.__setattr__(self, "descriptor", descriptor)
        if self.x0 is None:
            object.__setattr__(self, "x0", float(self.keypoint.x))
        if self.y0 is None:
            object.__setattr__(self, "y0", float(self.keypoint.y))

    @property
    def num_bits(self) -> int:
        return self.descriptor.size * 8

    @property
    def score(self) -> float:
        return self.keypoint.score

    def descriptor_bits(self) -> np.ndarray:
        """Return the descriptor as an array of 0/1 bits, LSB-first per byte."""
        return np.unpackbits(self.descriptor, bitorder="little")
