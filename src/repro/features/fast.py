"""FAST segment-test keypoint detection.

FAST (Features from Accelerated Segment Test) declares a pixel ``p`` a corner
if at least ``arc_length`` contiguous pixels on a Bresenham circle of radius 3
around ``p`` are all brighter than ``I(p) + t`` or all darker than
``I(p) - t``.  The paper uses the standard FAST-9/16 variant inside the FAST
Detection module, operating on a 7x7 pixel window streamed from the Image
Cache.

The implementation is vectorised over the whole image so the software
pipeline stays fast enough to run full synthetic sequences in the test suite;
the hardware model in :mod:`repro.hw.orb_extractor.fast_detector` reuses the
same circle offsets for its per-window functional check.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import numpy as np

from ..config import FastConfig
from ..errors import FeatureError
from ..image import GrayImage

#: Bresenham circle of radius 3: 16 (dx, dy) offsets in clockwise order
#: starting from the top, exactly the layout used by the original FAST paper
#: and by the 7x7 hardware window.
FAST_CIRCLE_OFFSETS: Tuple[Tuple[int, int], ...] = (
    (0, -3), (1, -3), (2, -2), (3, -1),
    (3, 0), (3, 1), (2, 2), (1, 3),
    (0, 3), (-1, 3), (-2, 2), (-3, 1),
    (-3, 0), (-3, -1), (-2, -2), (-1, -3),
)


def _circular_arc_mask(flags: np.ndarray, arc_length: int) -> np.ndarray:
    """Return a boolean map of pixels with >= ``arc_length`` contiguous True flags.

    ``flags`` has shape ``(16, H, W)`` where axis 0 indexes the circle
    positions.  Wrap-around arcs are handled by tiling the circle twice.
    """
    doubled = np.concatenate([flags, flags[: arc_length - 1]], axis=0).astype(np.int16)
    # run[i] = number of consecutive True ending at position i
    run = np.zeros_like(doubled)
    run[0] = doubled[0]
    for i in range(1, doubled.shape[0]):
        run[i] = doubled[i] * (run[i - 1] + 1)
    return (run >= arc_length).any(axis=0)


@lru_cache(maxsize=None)
def segment_arc_lut(arc_length: int) -> np.ndarray:
    """Lookup table resolving the segment test for every 16-bit ring bitmask.

    Entry ``m`` is True when the 16 flag bits of ``m`` (bit ``i`` = circle
    position ``i``, the :data:`FAST_CIRCLE_OFFSETS` order) contain a
    wrap-around run of at least ``arc_length`` set bits — the same
    computation :func:`_circular_arc_mask` performs per pixel, precomputed
    once for all 65536 masks.  This is exactly the combinational
    contiguous-arc check the hardware FAST Detection module evaluates on its
    7x7 window.  The returned array is cached and read-only.
    """
    if not 1 <= arc_length <= 16:
        raise FeatureError("arc_length must be in [1, 16]")
    masks = np.arange(1 << 16, dtype=np.uint32)
    bits = ((masks[:, None] >> np.arange(16, dtype=np.uint32)) & 1).astype(np.int32)
    doubled = np.concatenate([bits, bits[:, : arc_length - 1]], axis=1)
    run = np.zeros(masks.size, dtype=np.int32)
    has_arc = np.zeros(masks.size, dtype=bool)
    for position in range(doubled.shape[1]):
        run = doubled[:, position] * (run + 1)
        has_arc |= run >= arc_length
    has_arc.setflags(write=False)
    return has_arc


#: Indices of the four compass points (top, right, bottom, left) on the ring.
FAST_CARDINAL_POSITIONS: Tuple[int, int, int, int] = (0, 4, 8, 12)


@lru_cache(maxsize=None)
def cardinal_prefilter_lut(arc_length: int) -> np.ndarray:
    """16-entry necessary-condition LUT over the four compass-point flags.

    Entry ``p`` (bit ``j`` = flag at :data:`FAST_CARDINAL_POSITIONS`\\ ``[j]``)
    is True iff *some* full ring mask with exactly those compass flags passes
    the segment test.  Because the arc test is monotone in set bits, that is
    the mask with every non-compass bit set — so a False entry proves no
    pixel with that compass pattern can be a corner, and the full 16-pixel
    test only needs to run on the (typically few percent of) pixels whose
    brighter or darker compass pattern survives.  This mirrors the classic
    FAST high-speed test, generalised to any ``arc_length`` via
    :func:`segment_arc_lut`.
    """
    arc = segment_arc_lut(arc_length)
    quick = np.zeros(16, dtype=bool)
    for pattern in range(16):
        mask = 0xFFFF
        for bit, position in enumerate(FAST_CARDINAL_POSITIONS):
            if not (pattern >> bit) & 1:
                mask &= ~(1 << position)
        quick[pattern] = bool(arc[mask])
    quick.setflags(write=False)
    return quick


def fast_corner_mask(image: GrayImage, config: FastConfig | None = None) -> np.ndarray:
    """Return a boolean mask of FAST corner responses for the whole image.

    Pixels closer than ``config.border`` to any image edge are never corners,
    matching the hardware which only evaluates windows fully inside the image
    (and leaves a margin wide enough for the descriptor patch).
    """
    cfg = config or FastConfig()
    h, w = image.shape
    if h < 2 * cfg.border + 1 or w < 2 * cfg.border + 1:
        return np.zeros((h, w), dtype=bool)
    pixels = image.pixels.astype(np.int16)
    center = pixels
    brighter = np.zeros((16, h, w), dtype=bool)
    darker = np.zeros((16, h, w), dtype=bool)
    for idx, (dx, dy) in enumerate(FAST_CIRCLE_OFFSETS):
        shifted = np.roll(np.roll(pixels, -dy, axis=0), -dx, axis=1)
        brighter[idx] = shifted > center + cfg.threshold
        darker[idx] = shifted < center - cfg.threshold
    corner = _circular_arc_mask(brighter, cfg.arc_length) | _circular_arc_mask(
        darker, cfg.arc_length
    )
    # mask out the border where the rolled comparisons wrap around
    valid = np.zeros((h, w), dtype=bool)
    b = cfg.border
    valid[b : h - b, b : w - b] = True
    return corner & valid


def is_fast_corner(image: GrayImage, x: int, y: int, config: FastConfig | None = None) -> bool:
    """Scalar segment test for a single pixel (reference implementation).

    This mirrors exactly what the hardware FAST Detection module computes for
    one 7x7 window; it is used by unit tests to cross-check the vectorised
    :func:`fast_corner_mask`.
    """
    cfg = config or FastConfig()
    if not image.contains(x, y, border=3):
        return False
    center = image.intensity(x, y)
    ring = [image.intensity(x + dx, y + dy) for dx, dy in FAST_CIRCLE_OFFSETS]
    brighter = [v > center + cfg.threshold for v in ring]
    darker = [v < center - cfg.threshold for v in ring]

    def has_arc(flags: List[bool]) -> bool:
        doubled = flags + flags[: cfg.arc_length - 1]
        run = 0
        for flag in doubled:
            run = run + 1 if flag else 0
            if run >= cfg.arc_length:
                return True
        return False

    return has_arc(brighter) or has_arc(darker)


def detect_fast_keypoints_arrays(
    image: GrayImage, config: FastConfig | None = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(xs, ys)`` int64 arrays of all FAST corners in raster order.

    Raster (row-major) order matches the streaming order in which the
    hardware detects keypoints, which in turn determines heap insertion
    order in the rescheduled workflow.  This is the array-native entry point
    used on hot paths; :func:`detect_fast_keypoints` wraps it for callers
    that want Python tuples.
    """
    cfg = config or FastConfig()
    if cfg.arc_length > 16:
        raise FeatureError("arc_length cannot exceed the 16-pixel circle")
    mask = fast_corner_mask(image, cfg)
    ys, xs = np.nonzero(mask)
    return xs.astype(np.int64), ys.astype(np.int64)


def detect_fast_keypoints(
    image: GrayImage, config: FastConfig | None = None
) -> List[Tuple[int, int]]:
    """Return ``(x, y)`` coordinates of all FAST corners in raster order.

    Thin list-of-tuples wrapper over :func:`detect_fast_keypoints_arrays`.
    """
    xs, ys = detect_fast_keypoints_arrays(image, config)
    return list(zip(xs.tolist(), ys.tolist()))
