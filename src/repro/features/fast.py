"""FAST segment-test keypoint detection.

FAST (Features from Accelerated Segment Test) declares a pixel ``p`` a corner
if at least ``arc_length`` contiguous pixels on a Bresenham circle of radius 3
around ``p`` are all brighter than ``I(p) + t`` or all darker than
``I(p) - t``.  The paper uses the standard FAST-9/16 variant inside the FAST
Detection module, operating on a 7x7 pixel window streamed from the Image
Cache.

The implementation is vectorised over the whole image so the software
pipeline stays fast enough to run full synthetic sequences in the test suite;
the hardware model in :mod:`repro.hw.orb_extractor.fast_detector` reuses the
same circle offsets for its per-window functional check.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..config import FastConfig
from ..errors import FeatureError
from ..image import GrayImage

#: Bresenham circle of radius 3: 16 (dx, dy) offsets in clockwise order
#: starting from the top, exactly the layout used by the original FAST paper
#: and by the 7x7 hardware window.
FAST_CIRCLE_OFFSETS: Tuple[Tuple[int, int], ...] = (
    (0, -3), (1, -3), (2, -2), (3, -1),
    (3, 0), (3, 1), (2, 2), (1, 3),
    (0, 3), (-1, 3), (-2, 2), (-3, 1),
    (-3, 0), (-3, -1), (-2, -2), (-1, -3),
)


def _circular_arc_mask(flags: np.ndarray, arc_length: int) -> np.ndarray:
    """Return a boolean map of pixels with >= ``arc_length`` contiguous True flags.

    ``flags`` has shape ``(16, H, W)`` where axis 0 indexes the circle
    positions.  Wrap-around arcs are handled by tiling the circle twice.
    """
    doubled = np.concatenate([flags, flags[: arc_length - 1]], axis=0).astype(np.int16)
    # run[i] = number of consecutive True ending at position i
    run = np.zeros_like(doubled)
    run[0] = doubled[0]
    for i in range(1, doubled.shape[0]):
        run[i] = doubled[i] * (run[i - 1] + 1)
    return (run >= arc_length).any(axis=0)


def fast_corner_mask(image: GrayImage, config: FastConfig | None = None) -> np.ndarray:
    """Return a boolean mask of FAST corner responses for the whole image.

    Pixels closer than ``config.border`` to any image edge are never corners,
    matching the hardware which only evaluates windows fully inside the image
    (and leaves a margin wide enough for the descriptor patch).
    """
    cfg = config or FastConfig()
    h, w = image.shape
    if h < 2 * cfg.border + 1 or w < 2 * cfg.border + 1:
        return np.zeros((h, w), dtype=bool)
    pixels = image.pixels.astype(np.int16)
    center = pixels
    brighter = np.zeros((16, h, w), dtype=bool)
    darker = np.zeros((16, h, w), dtype=bool)
    for idx, (dx, dy) in enumerate(FAST_CIRCLE_OFFSETS):
        shifted = np.roll(np.roll(pixels, -dy, axis=0), -dx, axis=1)
        brighter[idx] = shifted > center + cfg.threshold
        darker[idx] = shifted < center - cfg.threshold
    corner = _circular_arc_mask(brighter, cfg.arc_length) | _circular_arc_mask(
        darker, cfg.arc_length
    )
    # mask out the border where the rolled comparisons wrap around
    valid = np.zeros((h, w), dtype=bool)
    b = cfg.border
    valid[b : h - b, b : w - b] = True
    return corner & valid


def is_fast_corner(image: GrayImage, x: int, y: int, config: FastConfig | None = None) -> bool:
    """Scalar segment test for a single pixel (reference implementation).

    This mirrors exactly what the hardware FAST Detection module computes for
    one 7x7 window; it is used by unit tests to cross-check the vectorised
    :func:`fast_corner_mask`.
    """
    cfg = config or FastConfig()
    if not image.contains(x, y, border=3):
        return False
    center = image.intensity(x, y)
    ring = [image.intensity(x + dx, y + dy) for dx, dy in FAST_CIRCLE_OFFSETS]
    brighter = [v > center + cfg.threshold for v in ring]
    darker = [v < center - cfg.threshold for v in ring]

    def has_arc(flags: List[bool]) -> bool:
        doubled = flags + flags[: cfg.arc_length - 1]
        run = 0
        for flag in doubled:
            run = run + 1 if flag else 0
            if run >= cfg.arc_length:
                return True
        return False

    return has_arc(brighter) or has_arc(darker)


def detect_fast_keypoints(
    image: GrayImage, config: FastConfig | None = None
) -> List[Tuple[int, int]]:
    """Return ``(x, y)`` coordinates of all FAST corners in raster order.

    Raster (row-major) order matches the streaming order in which the
    hardware detects keypoints, which in turn determines heap insertion
    order in the rescheduled workflow.
    """
    cfg = config or FastConfig()
    if cfg.arc_length > 16:
        raise FeatureError("arc_length cannot exceed the 16-pixel circle")
    mask = fast_corner_mask(image, cfg)
    ys, xs = np.nonzero(mask)
    return [(int(x), int(y)) for y, x in zip(ys, xs)]
