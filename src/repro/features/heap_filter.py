"""Feature filtering with a bounded max-heap.

The Heap module in the ORB Extractor stores descriptors, coordinates and
Harris scores of streaming features and guarantees that only the 1024
features with the best Harris scores are kept.  In the rescheduled workflow
the heap performs the *Filtering* step after descriptors have already been
computed.

A bounded "keep the K largest" structure is most naturally a **min-heap of
size K** keyed on score: a new feature replaces the root when it beats the
current minimum.  The paper calls the module a max-heap (it retains maximal
scores); :class:`BoundedScoreHeap` implements the retention semantics and
additionally counts the comparisons performed, which the hardware cycle
model uses for its heap-insertion cost.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Generic, Iterable, List, Sequence, Tuple, TypeVar

import numpy as np

from ..errors import FeatureError

T = TypeVar("T")


def _first_exceeding(scores: np.ndarray, start: int, threshold: float, chunk: int = 256) -> int:
    """Index of the first score after ``start`` exceeding ``threshold``, or -1.

    Scans in bounded chunks so a run of acceptances costs O(chunk) per
    accepted item instead of re-scanning (and re-allocating an index array
    over) the entire remaining tail each time.
    """
    count = scores.size
    index = start
    while index < count:
        stop = min(count, index + chunk)
        hits = scores[index:stop] > threshold
        if hits.any():
            return index + int(np.argmax(hits))
        index = stop
    return -1


@dataclass
class HeapStatistics:
    """Operation counts accumulated by the heap (consumed by the cycle model)."""

    insertions: int = 0
    replacements: int = 0
    rejections: int = 0
    comparisons: int = 0

    def total_offered(self) -> int:
        return self.insertions + self.replacements + self.rejections


@dataclass
class BoundedScoreHeap(Generic[T]):
    """Keep the ``capacity`` items with the largest scores.

    Items are arbitrary payloads (feature records); scores are floats.  Ties
    are broken in favour of the earlier-inserted item, matching streaming
    hardware where an equal-scoring later feature does not evict an earlier
    one.
    """

    capacity: int
    _heap: List[Tuple[float, int, T]] = field(default_factory=list)
    _counter: "itertools.count[int]" = field(default_factory=itertools.count)
    stats: HeapStatistics = field(default_factory=HeapStatistics)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise FeatureError("heap capacity must be positive")

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self.capacity

    def min_score(self) -> float:
        """Return the smallest retained score (the eviction threshold)."""
        if not self._heap:
            raise FeatureError("heap is empty")
        return self._heap[0][0]

    def offer(self, score: float, item: T) -> bool:
        """Offer an item; return True if it is retained.

        A full heap retains the item only if its score strictly exceeds the
        current minimum; the displaced minimum is discarded.
        """
        # ``-next(counter)`` makes earlier items win ties: for equal scores the
        # earlier item has a larger tiebreaker and therefore is *not* the root.
        order = -next(self._counter)
        if not self.is_full:
            heapq.heappush(self._heap, (score, order, item))
            self.stats.insertions += 1
            self.stats.comparisons += max(1, len(self._heap).bit_length())
            return True
        self.stats.comparisons += 1
        if score > self._heap[0][0]:
            heapq.heapreplace(self._heap, (score, order, item))
            self.stats.replacements += 1
            self.stats.comparisons += max(1, self.capacity.bit_length())
            return True
        self.stats.rejections += 1
        return False

    def extend(self, scored_items: Iterable[Tuple[float, T]]) -> None:
        """Offer every ``(score, item)`` pair in order."""
        for score, item in scored_items:
            self.offer(score, item)

    def offer_batch(self, scores: np.ndarray, items: Sequence[T]) -> int:
        """Bulk-insert a score array, preserving streaming-offer semantics.

        Equivalent to calling :meth:`offer` for every ``(score, item)`` pair
        in order — same retained set, same tie-breaking, same statistics —
        but runs of sub-threshold scores are rejected in one vectorised scan
        while the heap is full, instead of one Python call per feature.
        Returns the number of retained items.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 1 or scores.size != len(items):
            raise FeatureError("scores must be a 1-D array matching len(items)")
        retained = 0
        index = 0
        count = scores.size
        while index < count:
            if not self.is_full:
                if self.offer(float(scores[index]), items[index]):
                    retained += 1
                index += 1
                continue
            # the threshold only moves when an item is accepted, so every
            # score <= threshold before the next beating score is a rejection
            beating = _first_exceeding(scores, index, self._heap[0][0])
            skipped = (count if beating < 0 else beating) - index
            if skipped:
                self._reject_run(skipped)
                index += skipped
            if beating < 0:
                break
            if self.offer(float(scores[index]), items[index]):
                retained += 1
            index += 1
        return retained

    def _reject_run(self, count: int) -> None:
        """Account ``count`` consecutive rejections without touching the heap."""
        # advance the tie-break counter exactly as `count` offers would have
        deque(itertools.islice(self._counter, count), maxlen=0)
        self.stats.rejections += count
        self.stats.comparisons += count

    def items_by_score(self) -> List[T]:
        """Return retained items sorted by descending score (stable for ties)."""
        ordered = sorted(self._heap, key=lambda entry: (-entry[0], -entry[1]))
        return [item for _, _, item in ordered]

    def scores(self) -> List[float]:
        """Return retained scores in descending order."""
        return sorted((score for score, _, _ in self._heap), reverse=True)


def top_k_by_score(scored_items: Iterable[Tuple[float, T]], k: int) -> List[T]:
    """Reference implementation: keep the ``k`` best items by full sort.

    Used by tests to validate that :class:`BoundedScoreHeap` retains exactly
    the same set (streaming vs batch filtering must agree).  Ties are broken
    in favour of earlier items, as in the heap.
    """
    if k <= 0:
        raise FeatureError("k must be positive")
    indexed = [(score, index, item) for index, (score, item) in enumerate(scored_items)]
    indexed.sort(key=lambda entry: (-entry[0], entry[1]))
    return [item for _, _, item in indexed[:k]]
