"""Non-maximum suppression of FAST keypoints.

The NMS module of the ORB Extractor removes FAST keypoints that are too
close to each other: within any 3x3 pixel patch only the keypoint with the
maximum Harris score survives.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import FeatureError
from ..image.scratch import Workspace, workspace_grid


def non_maximum_suppression(
    corner_mask: np.ndarray,
    score_map: np.ndarray,
    radius: int = 1,
) -> np.ndarray:
    """Suppress non-maximal corners within a ``(2*radius+1)``-square window.

    Parameters
    ----------
    corner_mask:
        Boolean map of detected corners.
    score_map:
        Harris scores, same shape as ``corner_mask``.
    radius:
        Suppression radius; the paper's NMS uses a 3x3 patch (radius 1).

    Returns
    -------
    numpy.ndarray
        Boolean map with only locally-maximal corners set.
    """
    if corner_mask.shape != score_map.shape:
        raise FeatureError("corner mask and score map must have the same shape")
    if radius < 1:
        raise FeatureError("radius must be >= 1")
    masked_scores = np.where(corner_mask, score_map, -np.inf)
    local_max = masked_scores.copy()
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            if dx == 0 and dy == 0:
                continue
            shifted = np.full_like(masked_scores, -np.inf)
            src = masked_scores[
                max(0, -dy) : masked_scores.shape[0] - max(0, dy),
                max(0, -dx) : masked_scores.shape[1] - max(0, dx),
            ]
            shifted[
                max(0, dy) : masked_scores.shape[0] - max(0, -dy),
                max(0, dx) : masked_scores.shape[1] - max(0, -dx),
            ] = src
            local_max = np.maximum(local_max, shifted)
    # A corner survives if its score equals the local maximum.  Ties are
    # broken in favour of the raster-first pixel by strictly suppressing
    # later pixels that tie with an earlier one.
    survivors = corner_mask & (masked_scores >= local_max)
    return _break_ties_raster_order(survivors, masked_scores, radius)


def _break_ties_raster_order(
    survivors: np.ndarray, scores: np.ndarray, radius: int
) -> np.ndarray:
    """Keep only the raster-first corner among equal-score neighbours."""
    result = survivors.copy()
    ys, xs = np.nonzero(survivors)
    order = np.lexsort((xs, ys))  # raster order
    h, w = survivors.shape
    for idx in order:
        y, x = int(ys[idx]), int(xs[idx])
        if not result[y, x]:
            continue
        y0, y1 = max(0, y - radius), min(h, y + radius + 1)
        x0, x1 = max(0, x - radius), min(w, x + radius + 1)
        window = result[y0:y1, x0:x1]
        tie = (scores[y0:y1, x0:x1] == scores[y, x]) & window
        tie_ys, tie_xs = np.nonzero(tie)
        for ty, tx in zip(tie_ys + y0, tie_xs + x0):
            if (ty, tx) != (y, x):
                result[ty, tx] = False
    return result


def suppress_keypoints_sparse(
    xs: np.ndarray,
    ys: np.ndarray,
    scores: np.ndarray,
    shape: Tuple[int, int],
    radius: int = 1,
    workspace: Optional[Workspace] = None,
) -> np.ndarray:
    """Loop-free sparse NMS, bit-equivalent to :func:`non_maximum_suppression`.

    Takes corners as coordinate/score arrays (positions must be unique) and
    returns a boolean keep mask aligned with the inputs.  Semantics match the
    dense path exactly, including its sequential raster-order tie-breaking:

    1. a corner survives stage 1 iff its score is >= every corner score in
       its ``(2*radius+1)`` window (computed by scattering scores into a
       padded grid and gathering the window neighbours per corner — no
       ``np.roll`` full-image copies, no ``np.full(-inf)`` temporaries);
    2. any two stage-1 survivors within each other's window necessarily tie
       (each one's window max bounds the other's score), so the dense path's
       per-survivor tie-break loop is exactly a greedy raster-order maximal
       independent set over the conflicted survivors.  Raster order comes
       from one ``lexsort``; the greedy selection is resolved in vectorised
       rounds (a node is decided once no earlier-raster neighbour is still
       undecided), each round an array op over the few conflicted nodes.

    ``workspace`` recycles the scatter grids across calls; every touched cell
    is restored so the grids keep their fill invariant.
    """
    if radius < 1:
        raise FeatureError("radius must be >= 1")
    xs = np.asarray(xs, dtype=np.int64)
    ys = np.asarray(ys, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if not (xs.shape == ys.shape == scores.shape):
        raise FeatureError("xs, ys and scores must have the same length")
    if xs.size == 0:
        return np.zeros(0, dtype=bool)
    height, width = int(shape[0]), int(shape[1])
    if (xs < 0).any() or (xs >= width).any() or (ys < 0).any() or (ys >= height).any():
        raise FeatureError(f"corner coordinates outside shape {shape}")
    # raster order via lexsort; detection-engine input arrives pre-sorted
    # (np.nonzero emits raster order), in which case the sort is skipped
    raster_key = ys * width + xs
    if raster_key.size > 1 and np.all(raster_key[1:] > raster_key[:-1]):
        order = None
        sx, sy, ss = xs, ys, scores
    else:
        order = np.lexsort((xs, ys))
        sx, sy, ss = xs[order], ys[order], scores[order]
    # window offsets, excluding the centre
    span = np.arange(-radius, radius + 1, dtype=np.int64)
    dys, dxs = np.meshgrid(span, span, indexing="ij")
    centre = (dys == 0) & (dxs == 0)
    dys, dxs = dys[~centre], dxs[~centre]
    # all three scatter grids are requested up front with one shape so their
    # parent buffers grow in lockstep and share a flat row stride
    grid_shape = (height + 2 * radius, width + 2 * radius)
    score_grid = workspace_grid(workspace, "nms_scores", grid_shape, np.float64, -np.inf)
    flag_grid = workspace_grid(workspace, "nms_flags", grid_shape, bool, False)
    id_grid = workspace_grid(workspace, "nms_ids", grid_shape, np.int64, -1)
    flat_scores, stride = _flat_grid(score_grid)
    flat_flags, flag_stride = _flat_grid(flag_grid)
    flat_ids, id_stride = _flat_grid(id_grid)
    if not (stride == flag_stride == id_stride):  # pragma: no cover - defensive
        raise FeatureError("workspace NMS grids must share one allocation shape")
    # one flat neighbour-index matrix drives every scatter/gather below
    base = (sy + radius) * stride + (sx + radius)
    neighbour_index = base[:, None] + (dys * stride + dxs)[None, :]
    # stage 1: score >= max over window neighbours
    flat_scores[base] = ss
    keep = ss >= np.take(flat_scores, neighbour_index).max(axis=1)
    flat_scores[base] = -np.inf  # restore the fill invariant
    # conflict detection: survivors with another survivor in their window
    survivors = np.nonzero(keep)[0]
    flat_flags[base[survivors]] = True
    conflicted = np.take(flat_flags, neighbour_index[survivors]).any(axis=1)
    flat_flags[base[survivors]] = False
    if conflicted.any():
        clashed = survivors[conflicted]
        keep[clashed] = _greedy_raster_independent_set(
            flat_ids, base[clashed], neighbour_index[clashed], dys, dxs
        )
    if order is None:
        return keep
    result = np.empty(xs.size, dtype=bool)
    result[order] = keep
    return result


def _flat_grid(grid: np.ndarray) -> Tuple[np.ndarray, int]:
    """Flat view of a workspace grid's parent buffer plus its row stride.

    Indexing the parent keeps smaller-than-buffer views (later pyramid
    levels) zero-copy: callers compute flat indices with the parent stride.
    """
    parent = grid.base if grid.base is not None else grid
    return parent.reshape(-1), int(parent.shape[1])


def _greedy_raster_independent_set(
    flat_ids: np.ndarray,
    base: np.ndarray,
    neighbour_index: np.ndarray,
    dys: np.ndarray,
    dxs: np.ndarray,
) -> np.ndarray:
    """Greedy raster-order MIS over tied survivors.

    Nodes arrive in raster order with their flat grid positions (``base``)
    and window gather indices.  Equivalent to visiting survivors
    sequentially and suppressing each one's later tied neighbours, but
    resolved in rounds: a node is decided as soon as all earlier-raster
    window neighbours are decided, then selected iff none of them was
    selected.  Each round decides at least the earliest undecided node, and
    chains of ties (A kills B, which resurrects C, ...) propagate one link
    per round; every round is pure array ops over the conflicted nodes.
    """
    count = base.size
    flat_ids[base] = np.arange(count, dtype=np.int64)
    neighbour_ids = np.take(flat_ids, neighbour_index)
    flat_ids[base] = -1  # restore the fill invariant
    # missing neighbours map to a sentinel slot that is never undecided/selected
    neighbour_ids = np.where(neighbour_ids < 0, count, neighbour_ids)
    earlier = (dys < 0) | ((dys == 0) & (dxs < 0))
    earlier_ids = neighbour_ids[:, earlier]
    undecided = np.ones(count + 1, dtype=bool)
    undecided[count] = False
    selected = np.zeros(count + 1, dtype=bool)
    while undecided[:count].any():
        ready = undecided[:count] & ~undecided[earlier_ids].any(axis=1)
        chosen = ready & ~selected[neighbour_ids].any(axis=1)
        selected[:count] |= chosen
        undecided[:count] &= ~ready
    return selected[:count]


def suppress_keypoints(
    points: Sequence[Tuple[int, int]],
    scores: Sequence[float],
    shape: Tuple[int, int],
    radius: int = 1,
) -> List[int]:
    """Sparse-input NMS: return indices of ``points`` that survive suppression.

    Convenience wrapper used when corners are already in list form (e.g. by
    the hardware model, which streams keypoints rather than full maps).
    """
    if len(points) != len(scores):
        raise FeatureError("points and scores must have the same length")
    h, w = shape
    corner_mask = np.zeros((h, w), dtype=bool)
    score_map = np.full((h, w), -np.inf)
    for (x, y), score in zip(points, scores):
        if not (0 <= x < w and 0 <= y < h):
            raise FeatureError(f"point ({x}, {y}) outside shape {shape}")
        corner_mask[y, x] = True
        score_map[y, x] = score
    keep = non_maximum_suppression(corner_mask, score_map, radius=radius)
    return [i for i, (x, y) in enumerate(points) if keep[y, x]]
