"""Non-maximum suppression of FAST keypoints.

The NMS module of the ORB Extractor removes FAST keypoints that are too
close to each other: within any 3x3 pixel patch only the keypoint with the
maximum Harris score survives.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import FeatureError


def non_maximum_suppression(
    corner_mask: np.ndarray,
    score_map: np.ndarray,
    radius: int = 1,
) -> np.ndarray:
    """Suppress non-maximal corners within a ``(2*radius+1)``-square window.

    Parameters
    ----------
    corner_mask:
        Boolean map of detected corners.
    score_map:
        Harris scores, same shape as ``corner_mask``.
    radius:
        Suppression radius; the paper's NMS uses a 3x3 patch (radius 1).

    Returns
    -------
    numpy.ndarray
        Boolean map with only locally-maximal corners set.
    """
    if corner_mask.shape != score_map.shape:
        raise FeatureError("corner mask and score map must have the same shape")
    if radius < 1:
        raise FeatureError("radius must be >= 1")
    masked_scores = np.where(corner_mask, score_map, -np.inf)
    local_max = masked_scores.copy()
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            if dx == 0 and dy == 0:
                continue
            shifted = np.full_like(masked_scores, -np.inf)
            src = masked_scores[
                max(0, -dy) : masked_scores.shape[0] - max(0, dy),
                max(0, -dx) : masked_scores.shape[1] - max(0, dx),
            ]
            shifted[
                max(0, dy) : masked_scores.shape[0] - max(0, -dy),
                max(0, dx) : masked_scores.shape[1] - max(0, -dx),
            ] = src
            local_max = np.maximum(local_max, shifted)
    # A corner survives if its score equals the local maximum.  Ties are
    # broken in favour of the raster-first pixel by strictly suppressing
    # later pixels that tie with an earlier one.
    survivors = corner_mask & (masked_scores >= local_max)
    return _break_ties_raster_order(survivors, masked_scores, radius)


def _break_ties_raster_order(
    survivors: np.ndarray, scores: np.ndarray, radius: int
) -> np.ndarray:
    """Keep only the raster-first corner among equal-score neighbours."""
    result = survivors.copy()
    ys, xs = np.nonzero(survivors)
    order = np.lexsort((xs, ys))  # raster order
    h, w = survivors.shape
    for idx in order:
        y, x = int(ys[idx]), int(xs[idx])
        if not result[y, x]:
            continue
        y0, y1 = max(0, y - radius), min(h, y + radius + 1)
        x0, x1 = max(0, x - radius), min(w, x + radius + 1)
        window = result[y0:y1, x0:x1]
        tie = (scores[y0:y1, x0:x1] == scores[y, x]) & window
        tie_ys, tie_xs = np.nonzero(tie)
        for ty, tx in zip(tie_ys + y0, tie_xs + x0):
            if (ty, tx) != (y, x):
                result[ty, tx] = False
    return result


def suppress_keypoints(
    points: Sequence[Tuple[int, int]],
    scores: Sequence[float],
    shape: Tuple[int, int],
    radius: int = 1,
) -> List[int]:
    """Sparse-input NMS: return indices of ``points`` that survive suppression.

    Convenience wrapper used when corners are already in list form (e.g. by
    the hardware model, which streams keypoints rather than full maps).
    """
    if len(points) != len(scores):
        raise FeatureError("points and scores must have the same length")
    h, w = shape
    corner_mask = np.zeros((h, w), dtype=bool)
    score_map = np.full((h, w), -np.inf)
    for (x, y), score in zip(points, scores):
        if not (0 <= x < w and 0 <= y < h):
            raise FeatureError(f"point ({x}, {y}) outside shape {shape}")
        corner_mask[y, x] = True
        score_map[y, x] = score
    keep = non_maximum_suppression(corner_mask, score_map, radius=radius)
    return [i for i, (x, y) in enumerate(points) if keep[y, x]]
