"""Image smoothing filters.

The ORB Extractor applies a Gaussian blur to a 7x7 neighbourhood before the
BRIEF tests are evaluated (the *Image Smoother* module in Figure 4 of the
paper).  This module provides the separable Gaussian kernel used both by the
software pipeline and by the hardware model, plus a simple box blur used by
tests as a cheap reference.
"""

from __future__ import annotations

import numpy as np

from ..errors import ImageError
from .image import GrayImage

#: The ORB pre-descriptor smoother: a 7x7 Gaussian with sigma 2.  Shared by
#: :func:`gaussian_blur` and the detection engines (:mod:`repro.frontend`)
#: so the dense and fused smoothing paths cannot silently diverge.
GAUSSIAN_BLUR_SIZE: int = 7
GAUSSIAN_BLUR_SIGMA: float = 2.0


def gaussian_kernel_1d(size: int, sigma: float) -> np.ndarray:
    """Return a normalised 1-D Gaussian kernel of odd ``size``."""
    if size <= 0 or size % 2 == 0:
        raise ImageError("kernel size must be a positive odd integer")
    if sigma <= 0:
        raise ImageError("sigma must be positive")
    half = size // 2
    x = np.arange(-half, half + 1, dtype=np.float64)
    kernel = np.exp(-(x * x) / (2.0 * sigma * sigma))
    return kernel / kernel.sum()


def gaussian_kernel_2d(size: int, sigma: float) -> np.ndarray:
    """Return a normalised 2-D Gaussian kernel (outer product of the 1-D one)."""
    k = gaussian_kernel_1d(size, sigma)
    return np.outer(k, k)


def _convolve_separable(pixels: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Separable convolution with edge replication (matches line-buffer HW)."""
    half = kernel.size // 2
    padded = np.pad(pixels.astype(np.float64), half, mode="edge")
    # horizontal pass
    horiz = np.zeros_like(padded)
    for offset, weight in enumerate(kernel):
        horiz += weight * np.roll(padded, half - offset, axis=1)
    # vertical pass
    vert = np.zeros_like(padded)
    for offset, weight in enumerate(kernel):
        vert += weight * np.roll(horiz, half - offset, axis=0)
    return vert[half:-half, half:-half] if half else vert


def gaussian_blur(
    image: GrayImage, size: int = GAUSSIAN_BLUR_SIZE, sigma: float = GAUSSIAN_BLUR_SIGMA
) -> GrayImage:
    """Return a Gaussian-smoothed copy of ``image``.

    The default 7x7 kernel with ``sigma = 2`` mirrors the smoother used by
    ORB before descriptor tests; borders are handled by edge replication,
    matching a hardware line buffer that clamps addresses at image edges.
    """
    kernel = gaussian_kernel_1d(size, sigma)
    blurred = _convolve_separable(image.pixels, kernel)
    return GrayImage(np.clip(np.rint(blurred), 0, 255).astype(np.uint8))


def box_blur(image: GrayImage, size: int = 3) -> GrayImage:
    """Return a box-blurred copy of ``image`` (uniform kernel)."""
    if size <= 0 or size % 2 == 0:
        raise ImageError("kernel size must be a positive odd integer")
    kernel = np.full(size, 1.0 / size)
    blurred = _convolve_separable(image.pixels, kernel)
    return GrayImage(np.clip(np.rint(blurred), 0, 255).astype(np.uint8))


def sobel_gradients(image: GrayImage) -> tuple[np.ndarray, np.ndarray]:
    """Return the horizontal and vertical Sobel gradients of ``image``.

    Used by the Harris corner score.  Returns float64 arrays with the same
    shape as the image; borders are computed with edge replication.
    """
    pixels = np.pad(image.as_float(), 1, mode="edge")
    gx = (
        (pixels[:-2, 2:] + 2.0 * pixels[1:-1, 2:] + pixels[2:, 2:])
        - (pixels[:-2, :-2] + 2.0 * pixels[1:-1, :-2] + pixels[2:, :-2])
    )
    gy = (
        (pixels[2:, :-2] + 2.0 * pixels[2:, 1:-1] + pixels[2:, 2:])
        - (pixels[:-2, :-2] + 2.0 * pixels[:-2, 1:-1] + pixels[:-2, 2:])
    )
    return gx, gy
