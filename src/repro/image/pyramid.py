"""Image pyramid construction.

The eSLAM accelerator contains an *Image Resizing* module that generates a
4-layer pyramid by nearest-neighbour downsampling: while the ORB Extractor is
processing layer ``k``, the resizer produces layer ``k+1`` from layer ``k``.
This module provides the same functional behaviour in software; the hardware
cycle model in :mod:`repro.hw` reuses :func:`nearest_neighbor_resize` for its
functional output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..config import PyramidConfig
from ..errors import ImageError
from .image import GrayImage


def nearest_neighbor_resize(image: GrayImage, scale: float) -> GrayImage:
    """Downsample ``image`` by ``scale`` using nearest-neighbour sampling.

    ``scale`` is the ratio between source and destination size (a scale of
    1.2 shrinks both dimensions by 1/1.2).  The sampling grid matches the
    hardware resizer: destination pixel ``(i, j)`` reads source pixel
    ``(floor(i*scale), floor(j*scale))``.
    """
    if scale < 1.0:
        raise ImageError("scale must be >= 1.0 for downsampling")
    dst_h = max(1, int(round(image.height / scale)))
    dst_w = max(1, int(round(image.width / scale)))
    src_rows = np.minimum((np.arange(dst_h) * scale).astype(np.int64), image.height - 1)
    src_cols = np.minimum((np.arange(dst_w) * scale).astype(np.int64), image.width - 1)
    return GrayImage(image.pixels[np.ix_(src_rows, src_cols)])


@dataclass(frozen=True)
class PyramidLevel:
    """A single level of the pyramid."""

    level: int
    scale: float
    image: GrayImage

    def to_level0(self, x: float, y: float) -> Tuple[float, float]:
        """Map coordinates from this level back to level-0 pixel coordinates."""
        return x * self.scale, y * self.scale


class ImagePyramid:
    """A multi-scale pyramid built by successive nearest-neighbour resizing.

    Parameters
    ----------
    base:
        The level-0 image.
    config:
        Number of levels and scale factor between consecutive levels.
    """

    def __init__(self, base: GrayImage, config: PyramidConfig | None = None) -> None:
        self.config = config or PyramidConfig()
        if self.config.num_levels < 1:
            raise ImageError("pyramid must have at least one level")
        levels: List[PyramidLevel] = [PyramidLevel(0, 1.0, base)]
        current = base
        for level in range(1, self.config.num_levels):
            current = nearest_neighbor_resize(current, self.config.scale_factor)
            levels.append(
                PyramidLevel(level, self.config.level_scale(level), current)
            )
        self._levels = levels

    # -- access ----------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return len(self._levels)

    def level(self, index: int) -> PyramidLevel:
        if index < 0 or index >= self.num_levels:
            raise ImageError(f"level {index} outside [0, {self.num_levels})")
        return self._levels[index]

    def __iter__(self) -> Iterator[PyramidLevel]:
        return iter(self._levels)

    def __len__(self) -> int:
        return self.num_levels

    @property
    def levels(self) -> Sequence[PyramidLevel]:
        return tuple(self._levels)

    # -- statistics used by the runtime models -----------------------------
    def total_pixels(self) -> int:
        """Total number of pixels across all levels.

        The paper's discussion section notes the 4-layer pyramid processes
        roughly 48% more pixels than a 2-layer design; this helper provides
        the pixel counts used by that comparison and by the cycle model.
        """
        return sum(lvl.image.num_pixels for lvl in self._levels)

    def pixel_counts(self) -> List[int]:
        """Per-level pixel counts, level 0 first."""
        return [lvl.image.num_pixels for lvl in self._levels]


def pyramid_pixel_ratio(levels_a: int, levels_b: int, scale: float = 1.2) -> float:
    """Ratio of total pixels processed by an ``levels_a``-layer pyramid vs ``levels_b``.

    Pure geometric-series helper used by the discussion ablation benchmark
    (eSLAM's 4 layers vs the 2 layers of the prior FPGA ORB extractor [4]).
    """
    if levels_a < 1 or levels_b < 1:
        raise ImageError("pyramids must have at least one level")

    def total(levels: int) -> float:
        return sum((1.0 / scale**2) ** k for k in range(levels))

    return total(levels_a) / total(levels_b)
