"""Image pyramid construction.

The eSLAM accelerator contains an *Image Resizing* module that generates a
4-layer pyramid by nearest-neighbour downsampling: while the ORB Extractor is
processing layer ``k``, the resizer produces layer ``k+1`` from layer ``k``.
This module provides the same functional behaviour in software; the hardware
cycle model in :mod:`repro.hw` reuses :func:`nearest_neighbor_resize` for its
functional output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..config import PyramidConfig
from ..errors import ImageError
from .image import GrayImage
from .scratch import Workspace, workspace_array


def resize_dimensions(height: int, width: int, scale: float) -> Tuple[int, int]:
    """Destination ``(height, width)`` of one nearest-neighbour resize step.

    The single definition of the level-size rounding rule, shared by the
    software pyramid, every :mod:`repro.pyramid` provider and the hardware
    Image Resizing model (:mod:`repro.hw.resizer`), so level geometry cannot
    drift between the software and hardware paths.
    """
    if scale < 1.0:
        raise ImageError("scale must be >= 1.0 for downsampling")
    return max(1, int(round(height / scale))), max(1, int(round(width / scale)))


def resize_source_indices(dst_size: int, src_size: int, scale: float) -> np.ndarray:
    """Source index of every destination sample along one axis.

    Destination sample ``i`` reads source sample ``floor(i * scale)``
    clamped to the source extent — the hardware resizer's sampling grid,
    shared by the eager, streaming and shared-cache builds.
    """
    return np.minimum((np.arange(dst_size) * scale).astype(np.int64), src_size - 1)


def resize_nearest_into(
    src: np.ndarray,
    scale: float,
    out: np.ndarray,
    band_rows: Optional[int] = None,
    workspace: Optional[Workspace] = None,
) -> np.ndarray:
    """Nearest-neighbour downsample ``src`` into the preallocated ``out``.

    ``out`` must have exactly the shape :func:`resize_dimensions` predicts
    for ``src`` and ``scale``.  With ``band_rows`` set the destination is
    produced in row bands (source rows gathered into a reused ``workspace``
    scratch strip, then columns gathered into the output band), bounding the
    per-call scratch to one band regardless of level size; the banded and
    whole-level paths gather identical indices, so the output is
    bit-identical either way.
    """
    src_h, src_w = src.shape
    if out.shape != resize_dimensions(src_h, src_w, scale):
        raise ImageError(
            f"resize output shape {out.shape} does not match the "
            f"{resize_dimensions(src_h, src_w, scale)} this scale produces"
        )
    dst_h, dst_w = out.shape
    src_rows = resize_source_indices(dst_h, src_h, scale)
    src_cols = resize_source_indices(dst_w, src_w, scale)
    if band_rows is None or band_rows >= dst_h:
        out[:] = src[np.ix_(src_rows, src_cols)]
        return out
    if band_rows < 1:
        raise ImageError("band_rows must be positive")
    for start in range(0, dst_h, band_rows):
        stop = min(start + band_rows, dst_h)
        band = workspace_array(
            workspace, "pyramid_row_band", (stop - start, src_w), src.dtype
        )
        band[:] = src[src_rows[start:stop]]
        out[start:stop] = band[:, src_cols]
    return out


def pyramid_level_shapes(
    height: int, width: int, config: PyramidConfig | None = None
) -> List[Tuple[int, int]]:
    """Shape of every pyramid level for a ``height`` x ``width`` base image.

    Pure arithmetic (no pixels touched): applies :func:`resize_dimensions`
    level by level, so lazily-built pyramids can report pixel counts — and
    the shared-memory cache can compute slot layouts — without building
    anything.
    """
    cfg = config or PyramidConfig()
    shapes = [(int(height), int(width))]
    for _ in range(1, cfg.num_levels):
        shapes.append(resize_dimensions(*shapes[-1], cfg.scale_factor))
    return shapes


def validate_pyramid_base(
    base: object, config: PyramidConfig | None = None, min_level_size: int = 1
) -> GrayImage:
    """Validate a pyramid base image; returns it as a :class:`GrayImage`.

    Rejects non-``uint8`` raw arrays (a float array silently rescaled by
    :class:`GrayImage` is almost always a caller bug on the extraction hot
    path) and images whose **deepest** level would be smaller than
    ``min_level_size`` (the descriptor patch / FAST border window), raising
    a clear :class:`~repro.errors.ImageError` instead of letting the
    downstream stages fail with shape errors.
    """
    if isinstance(base, GrayImage):
        image = base
    elif isinstance(base, np.ndarray):
        if base.dtype != np.uint8:
            raise ImageError(
                f"pyramid base must be uint8 pixels, got dtype {base.dtype}; "
                "wrap explicit conversions in GrayImage first"
            )
        image = GrayImage(base)
    else:
        raise ImageError(
            f"pyramid base must be a GrayImage or uint8 array, got {type(base).__name__}"
        )
    if min_level_size > 1:
        deepest = pyramid_level_shapes(image.height, image.width, config)[-1]
        if min(deepest) < min_level_size:
            raise ImageError(
                f"image of {image.height}x{image.width} pixels shrinks to "
                f"{deepest[0]}x{deepest[1]} at the deepest pyramid level, smaller "
                f"than the {min_level_size}x{min_level_size} patch/border window "
                "the extractor needs; use a larger image or fewer pyramid levels"
            )
    return image


def nearest_neighbor_resize(image: GrayImage, scale: float) -> GrayImage:
    """Downsample ``image`` by ``scale`` using nearest-neighbour sampling.

    ``scale`` is the ratio between source and destination size (a scale of
    1.2 shrinks both dimensions by 1/1.2).  The sampling grid matches the
    hardware resizer: destination pixel ``(i, j)`` reads source pixel
    ``(floor(i*scale), floor(j*scale))``; rounding and sampling both live in
    the shared helpers above.
    """
    out = np.empty(resize_dimensions(image.height, image.width, scale), dtype=np.uint8)
    resize_nearest_into(image.pixels, scale, out)
    return GrayImage(out)


@dataclass(frozen=True)
class PyramidLevel:
    """A single level of the pyramid."""

    level: int
    scale: float
    image: GrayImage

    def to_level0(self, x: float, y: float) -> Tuple[float, float]:
        """Map coordinates from this level back to level-0 pixel coordinates."""
        return x * self.scale, y * self.scale


class ImagePyramid:
    """A multi-scale pyramid built by successive nearest-neighbour resizing.

    Parameters
    ----------
    base:
        The level-0 image (a :class:`GrayImage`, or a raw ``uint8`` array;
        other dtypes are rejected — see :func:`validate_pyramid_base`).
    config:
        Number of levels and scale factor between consecutive levels.
    min_level_size:
        Smallest side the deepest level may have; images that shrink below
        it raise :class:`~repro.errors.ImageError` up front instead of
        failing with shape errors downstream.
    """

    def __init__(
        self,
        base: GrayImage,
        config: PyramidConfig | None = None,
        min_level_size: int = 1,
    ) -> None:
        # num_levels/scale_factor validity is PyramidConfig.__post_init__'s job
        self.config = config or PyramidConfig()
        base = validate_pyramid_base(base, self.config, min_level_size)
        levels: List[PyramidLevel] = [PyramidLevel(0, 1.0, base)]
        current = base
        for level in range(1, self.config.num_levels):
            current = nearest_neighbor_resize(current, self.config.scale_factor)
            levels.append(
                PyramidLevel(level, self.config.level_scale(level), current)
            )
        self._levels = levels

    @classmethod
    def from_levels(
        cls, levels: Sequence[PyramidLevel], config: PyramidConfig
    ) -> "ImagePyramid":
        """Wrap already-built levels (cache attachments, tests) without rebuilding."""
        if not levels:
            raise ImageError("pyramid must have at least one level")
        pyramid = cls.__new__(cls)
        pyramid.config = config
        pyramid._levels = list(levels)
        return pyramid

    # -- access ----------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return len(self._levels)

    def level(self, index: int) -> PyramidLevel:
        if index < 0 or index >= self.num_levels:
            raise ImageError(f"level {index} outside [0, {self.num_levels})")
        return self._levels[index]

    def __iter__(self) -> Iterator[PyramidLevel]:
        return iter(self._levels)

    def __len__(self) -> int:
        return self.num_levels

    @property
    def levels(self) -> Sequence[PyramidLevel]:
        return tuple(self._levels)

    # -- statistics used by the runtime models -----------------------------
    def total_pixels(self) -> int:
        """Total number of pixels across all levels.

        The paper's discussion section notes the 4-layer pyramid processes
        roughly 48% more pixels than a 2-layer design; this helper provides
        the pixel counts used by that comparison and by the cycle model.
        """
        return sum(lvl.image.num_pixels for lvl in self._levels)

    def pixel_counts(self) -> List[int]:
        """Per-level pixel counts, level 0 first."""
        return [lvl.image.num_pixels for lvl in self._levels]


def pyramid_pixel_ratio(levels_a: int, levels_b: int, scale: float = 1.2) -> float:
    """Ratio of total pixels processed by an ``levels_a``-layer pyramid vs ``levels_b``.

    Pure geometric-series helper used by the discussion ablation benchmark
    (eSLAM's 4 layers vs the 2 layers of the prior FPGA ORB extractor [4]).
    """
    if levels_a < 1 or levels_b < 1:
        raise ImageError("pyramids must have at least one level")

    def total(levels: int) -> float:
        return sum((1.0 / scale**2) ** k for k in range(levels))

    return total(levels_a) / total(levels_b)
