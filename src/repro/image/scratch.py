"""Reusable per-frame scratch buffers for the vectorised detection paths.

The fused detection front-end touches several full-image intermediates per
pyramid level (ring-comparison bitmasks, padded gradient products, integral
images, NMS grids).  Allocating them per call dominates small-level runtimes,
so callers thread a ``workspace`` dict through the hot path: buffers are
allocated once at the largest size seen (level 0 of the pyramid) and smaller
levels slice views out of them.

A workspace is just a ``dict`` owned by the caller.  It is **not**
thread-safe — concurrent users (e.g. :class:`repro.serving.FrameServer`
workers) must hold one workspace per thread, which the vectorized detection
engine does via ``threading.local``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

Workspace = Dict[str, np.ndarray]


def _reusable_view(
    workspace: Optional[Workspace],
    name: str,
    shape: Sequence[int],
    dtype: np.dtype | type,
    fill=None,
) -> np.ndarray:
    """Shared grow-or-reallocate logic behind both workspace entry points.

    When ``workspace`` is None a fresh array is allocated (one-shot callers).
    Otherwise the buffer stored under ``name`` is grown to cover ``shape``
    (elementwise max with the previous size, so pyramid levels of any order
    converge on one level-0-sized allocation) and a leading view is
    returned.  ``fill`` selects ``np.full`` over ``np.empty`` at allocation.
    """
    shape = tuple(int(s) for s in shape)
    buffer = None if workspace is None else workspace.get(name)
    if buffer is None or buffer.dtype != np.dtype(dtype) or any(
        have < want for have, want in zip(buffer.shape, shape)
    ):
        alloc = shape if buffer is None else tuple(
            max(have, want) for have, want in zip(buffer.shape, shape)
        )
        buffer = np.empty(alloc, dtype=dtype) if fill is None else np.full(
            alloc, fill, dtype=dtype
        )
        if workspace is not None:
            workspace[name] = buffer
    return buffer[tuple(slice(0, s) for s in shape)]


def workspace_array(
    workspace: Optional[Workspace],
    name: str,
    shape: Sequence[int],
    dtype: np.dtype | type,
) -> np.ndarray:
    """Return a reusable array view of ``shape``; contents are UNINITIALISED."""
    return _reusable_view(workspace, name, shape, dtype)


def workspace_grid(
    workspace: Optional[Workspace],
    name: str,
    shape: Tuple[int, int],
    dtype: np.dtype | type,
    fill,
) -> np.ndarray:
    """Return a reusable 2-D grid guaranteed to be filled with ``fill``.

    The caller MUST restore every cell it writes back to ``fill`` before
    returning, so the next (possibly larger-image) call can rely on the
    invariant without re-clearing the whole grid.  Sparse writers touch a few
    thousand cells of a ~300k-cell grid, so the restore is far cheaper than a
    full fill per call.
    """
    return _reusable_view(workspace, name, shape, dtype, fill=fill)


def edge_pad_into(source: np.ndarray, pad: int, out: np.ndarray) -> np.ndarray:
    """Edge-replicated padding written into a preallocated buffer.

    Produces exactly ``np.pad(source, pad, mode="edge")`` (values only —
    ``out`` may be a wider dtype, matching how the reference pipeline casts
    before padding) without allocating.  ``out`` must have shape
    ``(h + 2*pad, w + 2*pad)``.
    """
    h, w = source.shape
    out[pad : pad + h, pad : pad + w] = source
    if pad:
        out[pad : pad + h, :pad] = out[pad : pad + h, pad : pad + 1]
        out[pad : pad + h, pad + w :] = out[pad : pad + h, pad + w - 1 : pad + w]
        out[:pad, :] = out[pad : pad + 1, :]
        out[pad + h :, :] = out[pad + h - 1 : pad + h, :]
    return out
