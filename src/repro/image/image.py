"""Grayscale image container used throughout the pipeline.

The FPGA datapath in the paper operates on 8-bit grayscale pixels streamed
from SDRAM.  :class:`GrayImage` wraps a ``uint8`` numpy array, validates its
shape/dtype once at construction and provides the small set of pixel-access
helpers the feature-extraction code needs (patch extraction, circular masks,
bounds checks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..errors import ImageError


def _as_uint8(data: np.ndarray) -> np.ndarray:
    """Validate and normalise raw pixel data to a C-contiguous uint8 array."""
    array = np.asarray(data)
    if array.ndim != 2:
        raise ImageError(f"expected a 2-D grayscale array, got shape {array.shape}")
    if array.size == 0:
        raise ImageError("image must not be empty")
    if array.dtype == np.uint8:
        return np.ascontiguousarray(array)
    if np.issubdtype(array.dtype, np.floating):
        if array.max(initial=0.0) <= 1.0 and array.min(initial=0.0) >= 0.0:
            array = array * 255.0
        return np.ascontiguousarray(np.clip(np.rint(array), 0, 255).astype(np.uint8))
    if np.issubdtype(array.dtype, np.integer):
        return np.ascontiguousarray(np.clip(array, 0, 255).astype(np.uint8))
    raise ImageError(f"unsupported image dtype {array.dtype}")


@dataclass(frozen=True)
class GrayImage:
    """An 8-bit grayscale image.

    Parameters
    ----------
    pixels:
        2-D array of pixel intensities.  Floating-point inputs in ``[0, 1]``
        are rescaled to ``[0, 255]``; integer inputs are clipped.
    """

    pixels: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "pixels", _as_uint8(self.pixels))

    # -- basic geometry -------------------------------------------------
    @property
    def height(self) -> int:
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        return int(self.pixels.shape[1])

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.height, self.width)

    @property
    def num_pixels(self) -> int:
        return self.height * self.width

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GrayImage):
            return NotImplemented
        return self.shape == other.shape and bool(np.array_equal(self.pixels, other.pixels))

    def __hash__(self) -> int:  # frozen dataclass with ndarray needs explicit hash
        return hash((self.shape, self.pixels.tobytes()))

    # -- pixel access ----------------------------------------------------
    def intensity(self, x: int, y: int) -> int:
        """Return the intensity at column ``x``, row ``y``."""
        if not self.contains(x, y):
            raise ImageError(f"pixel ({x}, {y}) outside image of shape {self.shape}")
        return int(self.pixels[y, x])

    def contains(self, x: float, y: float, border: int = 0) -> bool:
        """Return True if ``(x, y)`` lies inside the image minus ``border``."""
        return (
            border <= x < self.width - border
            and border <= y < self.height - border
        )

    def patch(self, x: int, y: int, radius: int) -> np.ndarray:
        """Return the square ``(2*radius+1)`` patch centred on ``(x, y)``."""
        if not self.contains(x, y, border=radius):
            raise ImageError(
                f"patch of radius {radius} at ({x}, {y}) exceeds image bounds {self.shape}"
            )
        return self.pixels[y - radius : y + radius + 1, x - radius : x + radius + 1]

    def as_float(self) -> np.ndarray:
        """Return the pixels as a float64 array (useful for filtering)."""
        return self.pixels.astype(np.float64)

    # -- construction helpers ---------------------------------------------
    @classmethod
    def zeros(cls, height: int, width: int) -> "GrayImage":
        if height <= 0 or width <= 0:
            raise ImageError("image dimensions must be positive")
        return cls(np.zeros((height, width), dtype=np.uint8))

    @classmethod
    def full(cls, height: int, width: int, value: int) -> "GrayImage":
        if height <= 0 or width <= 0:
            raise ImageError("image dimensions must be positive")
        return cls(np.full((height, width), value, dtype=np.uint8))

    def copy(self) -> "GrayImage":
        return GrayImage(self.pixels.copy())

    # -- iteration ---------------------------------------------------------
    def iter_rows(self) -> Iterator[np.ndarray]:
        """Yield rows in raster order (the order the hardware streams pixels)."""
        for row in self.pixels:
            yield row


def within_border(
    xs: np.ndarray, ys: np.ndarray, shape: Tuple[int, int], border: int
) -> np.ndarray:
    """Vectorised bounds mask: True where ``(x, y)`` keeps ``border`` inside.

    The array form of :meth:`GrayImage.contains` — one definition shared by
    the extractor's descriptor-border filter and the backends' patch-validity
    mask so the border semantics cannot drift between them.
    """
    height, width = shape
    return (xs >= border) & (xs < width - border) & (ys >= border) & (ys < height - border)


def circular_mask(radius: int) -> np.ndarray:
    """Return a boolean mask selecting the circular patch of ``radius``.

    The mask has shape ``(2*radius+1, 2*radius+1)`` and is True inside the
    circle of the given radius (inclusive).  This mirrors the circular patch
    the orientation-computing module integrates over.
    """
    if radius < 0:
        raise ImageError("radius must be non-negative")
    coords = np.arange(-radius, radius + 1)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    return (xx * xx + yy * yy) <= radius * radius


def integral_image(image: GrayImage) -> np.ndarray:
    """Return the summed-area table of ``image`` (int64, same shape)."""
    return np.cumsum(np.cumsum(image.pixels.astype(np.int64), axis=0), axis=1)


def box_sum(integral: np.ndarray, x0: int, y0: int, x1: int, y1: int) -> int:
    """Sum of pixels in the inclusive rectangle ``[x0, x1] x [y0, y1]``.

    ``integral`` must come from :func:`integral_image`.
    """
    if x0 > x1 or y0 > y1:
        raise ImageError("rectangle corners are inverted")
    total = int(integral[y1, x1])
    if x0 > 0:
        total -= int(integral[y1, x0 - 1])
    if y0 > 0:
        total -= int(integral[y0 - 1, x1])
    if x0 > 0 and y0 > 0:
        total += int(integral[y0 - 1, x0 - 1])
    return total
