"""Synthetic texture and test-image generation.

TUM RGB-D frames are not available offline, so the dataset substrate renders
synthetic scenes whose surfaces carry corner-rich textures.  This module
generates those textures and a few simple standalone test images (checkerboard,
random blocks, isolated corners) used by unit tests of the detector stack.
"""

from __future__ import annotations

import numpy as np

from ..errors import ImageError
from .image import GrayImage


def checkerboard(height: int, width: int, square: int = 16, low: int = 40, high: int = 220) -> GrayImage:
    """Return a checkerboard image: strong, regularly spaced corners."""
    if square <= 0:
        raise ImageError("square size must be positive")
    rows = (np.arange(height) // square) % 2
    cols = (np.arange(width) // square) % 2
    board = np.bitwise_xor.outer(rows, cols)
    pixels = np.where(board == 1, high, low).astype(np.uint8)
    return GrayImage(pixels)


def random_blocks(
    height: int,
    width: int,
    block: int = 8,
    seed: int = 0,
    low: int = 20,
    high: int = 235,
) -> GrayImage:
    """Return a blocky random texture (piecewise-constant, corner rich).

    Each ``block x block`` tile gets an independent uniform intensity, which
    produces strong FAST corners at tile junctions while remaining stable
    under small viewpoint changes -- the property the synthetic SLAM scenes
    rely on.
    """
    if block <= 0:
        raise ImageError("block size must be positive")
    rng = np.random.default_rng(seed)
    tiles_h = (height + block - 1) // block
    tiles_w = (width + block - 1) // block
    tiles = rng.integers(low, high + 1, size=(tiles_h, tiles_w), dtype=np.int64)
    pixels = np.kron(tiles, np.ones((block, block), dtype=np.int64))
    return GrayImage(pixels[:height, :width].astype(np.uint8))


def textured_noise(height: int, width: int, seed: int = 0, smooth: int = 2) -> GrayImage:
    """Return band-limited noise (random texture with mid-frequency content)."""
    rng = np.random.default_rng(seed)
    noise = rng.normal(0.0, 1.0, size=(height, width))
    for _ in range(max(0, smooth)):
        noise = 0.25 * (
            np.roll(noise, 1, axis=0)
            + np.roll(noise, -1, axis=0)
            + np.roll(noise, 1, axis=1)
            + np.roll(noise, -1, axis=1)
        )
    noise -= noise.min()
    peak = noise.max()
    if peak > 0:
        noise /= peak
    return GrayImage((noise * 255.0).astype(np.uint8))


def isolated_corner(height: int = 64, width: int = 64, corner_xy: tuple[int, int] | None = None) -> GrayImage:
    """Return an image with a single bright rectangle corner.

    The corner of the rectangle lies exactly at ``corner_xy`` (default: image
    centre), giving detector unit tests a known ground-truth location.
    """
    cx, cy = corner_xy if corner_xy is not None else (width // 2, height // 2)
    if not (0 < cx < width and 0 < cy < height):
        raise ImageError("corner must lie strictly inside the image")
    pixels = np.full((height, width), 30, dtype=np.uint8)
    pixels[cy:, cx:] = 220
    return GrayImage(pixels)


def add_gaussian_noise(image: GrayImage, sigma: float, seed: int = 0) -> GrayImage:
    """Return ``image`` corrupted by additive Gaussian noise of std ``sigma``."""
    if sigma < 0:
        raise ImageError("sigma must be non-negative")
    rng = np.random.default_rng(seed)
    noisy = image.as_float() + rng.normal(0.0, sigma, size=image.shape)
    return GrayImage(np.clip(np.rint(noisy), 0, 255).astype(np.uint8))


def shift_image(image: GrayImage, dx: int, dy: int, fill: int = 0) -> GrayImage:
    """Return ``image`` translated by integer ``(dx, dy)`` pixels.

    Exposed for matcher unit tests: features extracted from a shifted copy
    should match their originals with near-zero Hamming distance.
    """
    pixels = np.full_like(image.pixels, fill)
    h, w = image.shape
    src_x0, src_x1 = max(0, -dx), min(w, w - dx)
    src_y0, src_y1 = max(0, -dy), min(h, h - dy)
    dst_x0, dst_x1 = max(0, dx), min(w, w + dx)
    dst_y0, dst_y1 = max(0, dy), min(h, h + dy)
    if src_x0 < src_x1 and src_y0 < src_y1:
        pixels[dst_y0:dst_y1, dst_x0:dst_x1] = image.pixels[src_y0:src_y1, src_x0:src_x1]
    return GrayImage(pixels)


def rotate_image(image: GrayImage, angle_rad: float, fill: int = 0) -> GrayImage:
    """Return ``image`` rotated about its centre by ``angle_rad`` (nearest neighbour).

    Used by descriptor rotation-invariance tests: RS-BRIEF descriptors of the
    same feature before and after an in-plane rotation should stay close in
    Hamming distance once the orientation-driven shift is applied.
    """
    h, w = image.shape
    cy, cx = (h - 1) / 2.0, (w - 1) / 2.0
    yy, xx = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
    # inverse mapping: destination -> source
    cos_a, sin_a = np.cos(angle_rad), np.sin(angle_rad)
    sx = cos_a * (xx - cx) + sin_a * (yy - cy) + cx
    sy = -sin_a * (xx - cx) + cos_a * (yy - cy) + cy
    sxi = np.rint(sx).astype(np.int64)
    syi = np.rint(sy).astype(np.int64)
    valid = (sxi >= 0) & (sxi < w) & (syi >= 0) & (syi < h)
    out = np.full((h, w), fill, dtype=np.uint8)
    out[valid] = image.pixels[syi[valid], sxi[valid]]
    return GrayImage(out)
