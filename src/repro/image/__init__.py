"""Image substrate: containers, filtering, pyramids and synthetic textures."""

from .image import GrayImage, box_sum, circular_mask, integral_image, within_border
from .filters import box_blur, gaussian_blur, gaussian_kernel_1d, gaussian_kernel_2d, sobel_gradients
from .scratch import edge_pad_into, workspace_array, workspace_grid
from .pyramid import (
    ImagePyramid,
    PyramidLevel,
    nearest_neighbor_resize,
    pyramid_level_shapes,
    pyramid_pixel_ratio,
    resize_dimensions,
    resize_nearest_into,
    resize_source_indices,
    validate_pyramid_base,
)
from .synthetic import (
    add_gaussian_noise,
    checkerboard,
    isolated_corner,
    random_blocks,
    rotate_image,
    shift_image,
    textured_noise,
)

__all__ = [
    "GrayImage",
    "circular_mask",
    "integral_image",
    "box_sum",
    "within_border",
    "gaussian_blur",
    "box_blur",
    "gaussian_kernel_1d",
    "gaussian_kernel_2d",
    "sobel_gradients",
    "edge_pad_into",
    "workspace_array",
    "workspace_grid",
    "ImagePyramid",
    "PyramidLevel",
    "nearest_neighbor_resize",
    "pyramid_level_shapes",
    "pyramid_pixel_ratio",
    "resize_dimensions",
    "resize_nearest_into",
    "resize_source_indices",
    "validate_pyramid_base",
    "checkerboard",
    "random_blocks",
    "textured_noise",
    "isolated_corner",
    "add_gaussian_noise",
    "shift_image",
    "rotate_image",
]
