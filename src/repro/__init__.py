"""eSLAM reproduction: an energy-efficient ORB-SLAM accelerator, in Python.

This package reproduces "eSLAM: An Energy-Efficient Accelerator for Real-Time
ORB-SLAM on FPGA Platform" (Liu, Yang, Chen, Zhao -- DAC 2019):

* :mod:`repro.features` -- the RS-BRIEF descriptor (the paper's algorithmic
  contribution), FAST/Harris/NMS/orientation and the full ORB extractor in
  both the original and the rescheduled (streaming) workflow.
* :mod:`repro.backends` -- pluggable keypoint compute engines behind the
  extractor: the scalar ``reference`` path and the batched ``vectorized``
  default (bit-identical, registry-selected; see ``docs/backends.md``).
* :mod:`repro.frontend` -- pluggable detection front-end engines (FAST +
  Harris + NMS + smoothing): the dense per-stage ``reference`` path and the
  fused arc-LUT/sparse-Harris ``vectorized`` default (bit-identical; see
  ``docs/frontend.md``).
* :mod:`repro.pyramid` -- pluggable pyramid providers feeding those
  engines: ``eager``, just-in-time ``streaming`` row-banded construction,
  and a ``shared`` ``multiprocessing.shared_memory`` cache so N consumers
  of a frame reuse one build (bit-identical; see ``docs/pyramid.md``).
* :mod:`repro.serving` -- the :class:`~repro.serving.FrameServer`: many
  frames in flight through one shared engine/backend pair on a bounded
  thread pool.
* :mod:`repro.cluster` -- the :class:`~repro.cluster.ClusterServer`:
  process-sharded serving, one engine pair per worker, zero-copy frame
  hand-off through shared-memory ring slots (see ``docs/serving.md``).
* :mod:`repro.matching`, :mod:`repro.geometry`, :mod:`repro.optimization`,
  :mod:`repro.slam` -- the software SLAM pipeline (matching, PnP + RANSAC,
  Levenberg-Marquardt pose optimisation, mapping, evaluation).
* :mod:`repro.dataset` -- synthetic TUM-style RGB-D sequences with ground
  truth (the offline stand-in for the TUM benchmark).
* :mod:`repro.hw` -- the cycle-approximate model of the FPGA accelerator
  (ORB Extractor, BRIEF Matcher, Image Resizer, resources, AXI/SDRAM).
* :mod:`repro.platforms` -- calibrated runtime/power models of the ARM
  Cortex-A9, Intel i7 and eSLAM platforms plus the parallelised pipeline.
* :mod:`repro.analysis` -- experiment runners for every table and figure.

Quick start::

    from repro.config import SlamConfig
    from repro.dataset import SequenceSpec, make_sequence
    from repro.slam import run_slam

    sequence = make_sequence(SequenceSpec(name="fr1/xyz", num_frames=30,
                                          image_width=320, image_height=240))
    result = run_slam(sequence)
    print(result.ate().rmse_cm, "cm RMSE")
"""

from .config import (
    AcceleratorConfig,
    DescriptorConfig,
    ExtractorConfig,
    FastConfig,
    MatcherConfig,
    PyramidConfig,
    SlamConfig,
    TrackerConfig,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "SlamConfig",
    "ExtractorConfig",
    "DescriptorConfig",
    "FastConfig",
    "PyramidConfig",
    "MatcherConfig",
    "TrackerConfig",
    "AcceleratorConfig",
]
