"""Cross-process frame tracing for the serving stack.

A frame served by the cluster lives in four places — the producer thread,
the dispatcher, a worker process, the collector — and none of the existing
counters can say *where a particular frame spent its time*.  This module
records that journey as spans and merges them onto one timeline:

* :class:`Tracer` — a per-process (or per-thread-pool) span recorder.
  ``span(name, frame=...)`` is a context manager for thread-scoped spans,
  ``record(...)`` logs a span whose endpoints were measured elsewhere
  (cross-thread waits such as backlog time), ``instant(...)`` marks a
  point event.  **A disabled tracer is a no-op behind a single ``if``**:
  ``span`` returns a shared no-op context manager and ``record`` /
  ``instant`` return immediately, so instrumentation can stay in every
  hot path permanently (``benchmarks/bench_telemetry_overhead.py`` holds
  the disabled cost to statistical zero).
* Worker processes record spans into their local buffer and the cluster
  worker ships the drained buffer **with each result flush** (and once
  more at shutdown), so spans ride the existing result queue — a crashed
  worker's already-flushed spans survive because the supervisor drains
  the dead worker's result queue before reclaiming anything.
* :class:`Trace` — the server-side merge.  Each worker's ``perf_counter``
  epoch differs from the server's; every shipped buffer carries the
  worker clock at flush time, the server stamps its own clock at receipt,
  and the **minimum observed (receipt − flush) difference** per worker is
  the NTP-style upper-bound estimate of transit + offset used to shift
  that worker's spans onto the server timeline
  (:meth:`Trace.add_worker_spans`).  ``export_chrome_trace`` writes
  Chrome trace-event JSON loadable in Perfetto (``docs/observability.md``
  → Perfetto how-to).

Span records are plain tuples (pickle-friendly, no per-span objects
beyond the context manager):

``(kind, name, start_s, end_s, frame, thread_id, args)``

with ``kind`` one of ``"span"`` (thread-scoped, properly nested per
thread), ``"async"`` (cross-thread wait — exported as Chrome async
begin/end events keyed by frame, exempt from the per-thread nesting
invariant by construction) and ``"instant"``.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError

SPAN = "span"
ASYNC = "async"
INSTANT = "instant"

#: Soft cap on buffered records per tracer; beyond it new records are
#: dropped (and counted) instead of growing memory without bound between
#: drains.  Generous: a traced frame emits ~20 records.
MAX_BUFFERED_RECORDS = 262144


class _NoopSpan:
    """The shared do-nothing context manager returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **args) -> None:
        """Accept (and discard) late span arguments."""


_NOOP_SPAN = _NoopSpan()


class _Span:
    """An open thread-scoped span; closing it appends one record."""

    __slots__ = ("_tracer", "_name", "_frame", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, frame, args) -> None:
        self._tracer = tracer
        self._name = name
        self._frame = frame
        self._args = args

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._tracer._append(
            (
                SPAN,
                self._name,
                self._start,
                time.perf_counter(),
                self._frame,
                threading.get_ident(),
                self._args,
            )
        )
        return False

    def set(self, **args) -> None:
        """Attach arguments discovered mid-span (e.g. profile counters)."""
        if self._args is None:
            self._args = {}
        self._args.update(args)


class Tracer:
    """A span recorder for one process (or one thread pool).

    ``track`` names the timeline the records belong to (``"server"``,
    ``"worker-3"``, …).  ``enabled=False`` (the default) makes every
    entry point a guarded no-op, so tracers can be threaded through hot
    paths unconditionally.
    """

    __slots__ = ("enabled", "track", "dropped", "_records", "_drain_lock")

    def __init__(self, enabled: bool = False, track: str = "local") -> None:
        self.enabled = bool(enabled)
        self.track = track
        self.dropped = 0
        self._records: List[tuple] = []
        self._drain_lock = threading.Lock()

    # -- recording ----------------------------------------------------------
    def span(self, name: str, frame=None, **args):
        """Context manager timing the enclosed block on this thread."""
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name, frame, args or None)

    def record(
        self, name: str, start_s: float, end_s: float, frame=None, **args
    ) -> None:
        """Log a span measured elsewhere (cross-thread waits)."""
        if not self.enabled:
            return
        self._append(
            (ASYNC, name, start_s, end_s, frame, threading.get_ident(), args or None)
        )

    def complete(self, name: str, start_s: float, frame=None, **args) -> None:
        """Log a thread-scoped span that started at ``start_s`` and ends now.

        For long method bodies that already stamp their own start time
        (e.g. ``ClusterServer.submit``), where wrapping the whole body in a
        ``span`` context manager would hurt readability.
        """
        if not self.enabled:
            return
        self._append(
            (
                SPAN,
                name,
                start_s,
                time.perf_counter(),
                frame,
                threading.get_ident(),
                args or None,
            )
        )

    def instant(self, name: str, frame=None, **args) -> None:
        """Mark a point event (e.g. a frame's future resolving)."""
        if not self.enabled:
            return
        now = time.perf_counter()
        self._append(
            (INSTANT, name, now, now, frame, threading.get_ident(), args or None)
        )

    def _append(self, record: tuple) -> None:
        # list.append is atomic under the GIL; the cap check is advisory
        if len(self._records) >= MAX_BUFFERED_RECORDS:
            self.dropped += 1
            return
        self._records.append(record)

    # -- buffer hand-off ----------------------------------------------------
    def drain(self) -> List[tuple]:
        """Atomically take (and clear) everything recorded so far."""
        with self._drain_lock:
            records, self._records = self._records, []
        return records

    def __len__(self) -> int:
        return len(self._records)


# -- process-local tracer -----------------------------------------------------
# The deepest instrumentation sites (OrbExtractor stages, SlamSystem's
# tracking loop) cannot thread a tracer parameter through every signature;
# they read the process-local tracer instead.  Cluster workers install
# theirs at boot, servers install one for the duration of a traced run.
_process_tracer = Tracer(enabled=False, track="local")


def current_tracer() -> Tracer:
    """The process-local tracer (disabled unless someone installed one)."""
    return _process_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` process-locally; returns the previous one."""
    global _process_tracer
    previous = _process_tracer
    _process_tracer = tracer
    return previous


class Trace:
    """Spans from many tracks merged onto the server's ``perf_counter`` line.

    Server-side records enter via :meth:`add_spans` with offset 0; worker
    buffers enter via :meth:`add_worker_spans`, which also feeds the
    per-track clock calibration: every buffer carries the worker clock at
    flush and the server clock at receipt, and the smallest difference
    ever observed for a track is its offset estimate (transit time is the
    only error, bounded below by zero, so the minimum over many flushes
    converges onto the true epoch offset).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # track -> list of raw records (worker clock domain until export)
        self._pending: Dict[str, List[tuple]] = {}
        self._offsets: Dict[str, float] = {}

    # -- ingestion ----------------------------------------------------------
    def add_spans(self, track: str, records: List[tuple]) -> None:
        """Merge records already on the server clock (offset 0)."""
        if not records:
            return
        with self._lock:
            self._pending.setdefault(track, []).extend(records)
            self._offsets.setdefault(track, 0.0)

    def add_worker_spans(
        self,
        track: str,
        records: List[tuple],
        worker_clock_s: float,
        server_clock_s: Optional[float] = None,
    ) -> None:
        """Merge one shipped worker buffer and refine the track's offset.

        ``worker_clock_s`` is the worker's ``perf_counter`` at flush time;
        ``server_clock_s`` defaults to *now* (the receipt time).  The
        offset sample ``server - worker`` over-estimates the true epoch
        offset by exactly the queue transit delay, so the running minimum
        is kept.
        """
        if server_clock_s is None:
            server_clock_s = time.perf_counter()
        sample = server_clock_s - worker_clock_s
        with self._lock:
            best = self._offsets.get(track)
            if best is None or sample < best:
                self._offsets[track] = sample
            if records:
                self._pending.setdefault(track, []).extend(records)

    def clock_offset(self, track: str) -> Optional[float]:
        """Current offset estimate for ``track`` (None before any sample)."""
        with self._lock:
            return self._offsets.get(track)

    # -- merged views --------------------------------------------------------
    def spans(self, track: Optional[str] = None) -> List[tuple]:
        """Offset-corrected records, sorted by start time.

        Each entry is ``(track, kind, name, start_s, end_s, frame,
        thread_id, args)`` with times on the server clock.
        """
        with self._lock:
            items = [
                (
                    a_track,
                    kind,
                    name,
                    start + self._offsets.get(a_track, 0.0),
                    end + self._offsets.get(a_track, 0.0),
                    frame,
                    thread_id,
                    args,
                )
                for a_track, records in self._pending.items()
                for (kind, name, start, end, frame, thread_id, args) in records
                if track is None or a_track == track
            ]
        items.sort(key=lambda item: (item[3], item[4]))
        return items

    def tracks(self) -> List[str]:
        with self._lock:
            return sorted(self._pending)

    # -- structural checks ---------------------------------------------------
    def validate(self) -> List[str]:
        """Structural problems in the merged trace (empty list = valid).

        Checks, per (track, thread): spans sorted by start time are
        **monotonic and non-overlapping** — each consecutive pair is
        either disjoint or properly nested (context managers on one
        thread can only nest), and no span ends before it starts.  Async
        wait records are cross-thread by design and exempt.
        """
        problems: List[str] = []
        per_thread: Dict[Tuple[str, int], List[tuple]] = {}
        for item in self.spans():
            track, kind, name, start, end, frame, thread_id, args = item
            if end < start:
                problems.append(f"{track}/{name}: negative duration")
            if kind == SPAN:
                per_thread.setdefault((track, thread_id), []).append(item)
        for (track, thread_id), items in per_thread.items():
            stack: List[tuple] = []
            for item in items:  # already sorted by start
                _, _, name, start, end, _, _, _ = item
                while stack and start >= stack[-1][4]:
                    stack.pop()
                if stack and end > stack[-1][4]:
                    problems.append(
                        f"{track}: span {name!r} overlaps "
                        f"{stack[-1][2]!r} without nesting"
                    )
                    continue
                stack.append(item)
        return problems

    def frame_coverage(self) -> Dict[object, Dict[str, bool]]:
        """Per-frame submit→resolve coverage over the merged trace.

        A frame is **covered** when a ``submit`` span exists, a
        ``resolve`` instant exists, and the resolve does not precede the
        submit's start — the bench's per-frame acceptance check.
        """
        coverage: Dict[object, Dict[str, object]] = {}
        for track, kind, name, start, end, frame, thread_id, args in self.spans():
            if frame is None:
                continue
            entry = coverage.setdefault(
                frame, {"submit": False, "resolve": False, "submit_start": None,
                        "resolve_at": None}
            )
            if name == "submit" and kind == SPAN:
                entry["submit"] = True
                if entry["submit_start"] is None:
                    entry["submit_start"] = start
            elif name == "resolve":
                entry["resolve"] = True
                entry["resolve_at"] = end
        report: Dict[object, Dict[str, bool]] = {}
        for frame, entry in coverage.items():
            ordered = (
                entry["submit"]
                and entry["resolve"]
                and entry["resolve_at"] >= entry["submit_start"]
            )
            report[frame] = {
                "submit": bool(entry["submit"]),
                "resolve": bool(entry["resolve"]),
                "covered": bool(ordered),
            }
        return report

    # -- export --------------------------------------------------------------
    def to_chrome_events(self) -> List[dict]:
        """The merged trace as Chrome trace-event dicts (``ph`` X/b/e/i)."""
        events: List[dict] = []
        track_pids: Dict[str, int] = {}
        thread_tids: Dict[Tuple[str, int], int] = {}
        for track in self.tracks():
            pid = track_pids.setdefault(track, len(track_pids))
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": track},
                }
            )
        for track, kind, name, start, end, frame, thread_id, args in self.spans():
            pid = track_pids[track]
            tid_key = (track, thread_id)
            if tid_key not in thread_tids:
                ordinal = sum(1 for key in thread_tids if key[0] == track)
                thread_tids[tid_key] = ordinal
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": ordinal,
                        "args": {"name": f"{track}/t{ordinal}"},
                    }
                )
            tid = thread_tids[tid_key]
            event_args = dict(args) if args else {}
            if frame is not None:
                event_args["frame"] = frame
            base = {"name": name, "pid": pid, "tid": tid, "cat": "repro"}
            if event_args:
                base["args"] = event_args
            ts = start * 1e6
            if kind == SPAN:
                events.append({**base, "ph": "X", "ts": ts, "dur": (end - start) * 1e6})
            elif kind == ASYNC:
                ident = str(frame) if frame is not None else name
                events.append({**base, "ph": "b", "ts": ts, "id": ident, "cat": "wait"})
                events.append(
                    {**base, "ph": "e", "ts": end * 1e6, "id": ident, "cat": "wait"}
                )
            else:  # INSTANT
                events.append({**base, "ph": "i", "ts": ts, "s": "t"})
        events.sort(key=lambda event: (event.get("ts", -1.0)))
        return events

    def export_chrome_trace(self, path: str) -> str:
        """Write Chrome trace-event JSON (open in Perfetto / chrome://tracing).

        Returns the path written.  The format is the "JSON array of
        events" flavour wrapped in ``{"traceEvents": [...]}``, which both
        Perfetto and chrome://tracing load directly.
        """
        payload = {
            "traceEvents": self.to_chrome_events(),
            "displayTimeUnit": "ms",
        }
        with open(path, "w") as handle:
            json.dump(payload, handle)
        return path


def load_chrome_trace(path: str) -> dict:
    """Read back an exported trace (test/CI helper)."""
    with open(path) as handle:
        payload = json.load(handle)
    if "traceEvents" not in payload:
        raise ReproError(f"{path} is not a Chrome trace-event file")
    return payload
