"""Structured event journal for supervision and routing decisions.

Counters say *how many* restarts happened; a chaos postmortem needs to know
*when*, *to whom*, and *in what order* relative to the steals, sheds and
requeues around them.  The journal records every supervision/routing event
as a typed :class:`Event` with a monotonic timestamp (``time.perf_counter``
— the same clock the tracer uses, so journal rows line up with trace spans)
plus the active :class:`~repro.chaos.FaultPlan` seed when one is installed,
turning a seeded chaos run into a replayable timeline
(:meth:`EventJournal.timeline`).

Event kinds logged by the stack (``docs/observability.md`` → Event journal
schema):

==================  ==========================================================
kind                meaning
==================  ==========================================================
``worker_dead``     collector noticed a worker process exit
``worker_failed``   worker gave up (restart budget exhausted)
``restart``         supervisor (or collector) respawned a worker
``stall_kill``      supervisor killed a worker whose heartbeat went stale
``steal``           idle worker stole a queued frame from a victim's backlog
``shed``            admission control rejected a submit (backlog full)
``requeue``         in-flight frames of a dead worker were re-dispatched
``expired``         a frame's deadline lapsed before dispatch
``pool_grow``       elastic controller added a worker
``pool_shrink``     elastic controller retired a worker
``publish_fallback``  shared-pyramid publish failed; frame fell back to ring
``leak_reclaim``    close() reclaimed slots a dead worker left pinned
``restart_backoff``  a respawn attempt failed; retry scheduled after backoff
``chaos_kill``      fault plan killed a worker (injected)
``chaos_stall``     fault plan wedged a worker's heartbeat (injected)
``chaos_publish_fail``  fault plan armed a shared-pyramid publish failure
``chaos_slow_frame``  fault plan slept the producer before a submission
==================  ==========================================================
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Bounded capacity: one journal row is tiny, but a runaway restart loop
#: must not grow memory without bound.  Oldest rows are dropped first.
DEFAULT_CAPACITY = 8192


@dataclass(frozen=True)
class Event:
    """One journal row.

    ``at_s`` is ``time.perf_counter()`` at log time — monotonic, and
    directly comparable with trace span times on the same process.
    ``seed`` is the active fault-plan seed (None outside chaos runs) so a
    postmortem can name the exact storm that produced the timeline.
    """

    at_s: float
    kind: str
    worker_id: Optional[int] = None
    seed: Optional[int] = None
    detail: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        row = {"at_s": self.at_s, "kind": self.kind}
        if self.worker_id is not None:
            row["worker_id"] = self.worker_id
        if self.seed is not None:
            row["seed"] = self.seed
        if self.detail:
            row.update(self.detail)
        return row


class EventJournal:
    """Append-only, bounded, thread-safe event log.

    The cluster server owns one journal and every supervision/routing
    site logs through it; a :class:`~repro.chaos.FaultPlan` installs its
    seed via :attr:`fault_seed` when it starts firing so injected faults
    and the stack's reactions carry the same provenance.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._capacity = max(1, int(capacity))
        self._events: List[Event] = []
        self._dropped = 0
        self._lock = threading.Lock()
        #: Seed of the fault plan currently driving chaos (None otherwise).
        self.fault_seed: Optional[int] = None

    def log(self, kind: str, worker_id: Optional[int] = None, **detail) -> Event:
        """Record one event; returns the row for callers that re-emit it."""
        event = Event(
            at_s=time.perf_counter(),
            kind=kind,
            worker_id=worker_id,
            seed=self.fault_seed,
            detail=detail,
        )
        with self._lock:
            self._events.append(event)
            if len(self._events) > self._capacity:
                overflow = len(self._events) - self._capacity
                del self._events[:overflow]
                self._dropped += overflow
        return event

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def events(self, kind: Optional[str] = None) -> List[Event]:
        """Rows in arrival order, optionally filtered by kind."""
        with self._lock:
            rows = list(self._events)
        if kind is not None:
            rows = [event for event in rows if event.kind == kind]
        return rows

    def as_dicts(self) -> List[dict]:
        return [event.as_dict() for event in self.events()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def timeline(self) -> str:
        """The journal rendered as a readable postmortem timeline.

        Timestamps are shown relative to the first row; one line per
        event, e.g.::

            +0.000s  chaos_kill    worker=1  [seed 7]
            +0.004s  worker_dead   worker=1  requeued=2
            +0.012s  restart       worker=1  restarts=1
        """
        rows = self.events()
        if not rows:
            return "(empty journal)"
        origin = rows[0].at_s
        lines = []
        for event in rows:
            parts = [f"+{event.at_s - origin:.3f}s", f"{event.kind:<16}"]
            if event.worker_id is not None:
                parts.append(f"worker={event.worker_id}")
            parts.extend(f"{key}={value}" for key, value in event.detail.items())
            if event.seed is not None:
                parts.append(f"[seed {event.seed}]")
            lines.append("  ".join(parts))
        return "\n".join(lines)
