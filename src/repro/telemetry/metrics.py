"""Unified metrics primitives for the serving stack.

The paper's evaluation is built around per-stage counters (Table 2's
runtime breakdown); the reproduction's serving layer accumulated ~25
ad-hoc counter dicts across :class:`~repro.serving.ServingStats`,
:class:`~repro.cluster.ClusterStats`, per-worker stats and the shared
pyramid cache.  This module is the single store those views now share:

* :class:`Counter` — monotonically increasing event count (plus a signed
  :meth:`Counter.add` escape hatch for the rare compensating adjustment,
  e.g. a submission abandoned before it ever ran);
* :class:`Gauge` — a point-in-time value, settable or computed on read
  from a callback (the Prometheus "collect" idiom — used for the pyramid
  cache and transport-ring views whose source of truth is shared memory);
* :class:`Histogram` — **fixed log-bucket** distribution: ``observe`` is
  O(1), ``percentile`` is O(buckets), memory is bounded by the bucket
  count, and p50/p95/p99 are accurate to one bucket's relative width
  (``growth - 1``, 25% by default).  This is what lets a stats scrape
  read latency percentiles without snapshotting and sorting a deque
  under the stats lock.
* :class:`MetricsRegistry` — name+labels → metric store with
  :meth:`~MetricsRegistry.snapshot` (plain dict), JSON and Prometheus
  text exposition.

Metric mutation methods take a tiny per-metric lock, so standalone use is
thread-safe; the serving stats additionally serialize related updates
under their own coarser locks exactly as before.  The naming scheme
(``serving_*``, ``cluster_*``, ``cluster_worker_*{worker=...}``,
``pyramid_cache_*``, ``*_ring_*``) is documented — and drift-checked by
``tests/test_telemetry.py`` — in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..errors import ReproError

#: Default log-bucket layout for latency histograms: 10 µs lowest bound,
#: 25% per-bucket growth, 72 buckets → top bound ≈ 95 s.  Everything the
#: serving stack measures (µs-scale telemetry ops to multi-second chaos
#: recoveries) lands inside with ≤ 25% relative quantile error.
DEFAULT_LOWEST = 1e-5
DEFAULT_GROWTH = 1.25
DEFAULT_BUCKETS = 72


def _label_suffix(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


class Metric:
    """Common identity of every registered metric (name + labels + help)."""

    kind = "metric"

    def __init__(
        self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None
    ) -> None:
        if not name or not name.replace("_", "a").isalnum():
            raise ReproError(
                f"metric name {name!r} must be non-empty [a-zA-Z0-9_]"
            )
        self.name = name
        self.help = help
        self.labels: Tuple[Tuple[str, str], ...] = tuple(
            sorted((str(k), str(v)) for k, v in (labels or {}).items())
        )
        self._lock = threading.Lock()

    @property
    def key(self) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        return (self.name, self.labels)

    @property
    def full_name(self) -> str:
        """``name{label="value",...}`` — the snapshot/exposition key."""
        return self.name + _label_suffix(self.labels)


class Counter(Metric):
    """A monotonically increasing event counter.

    :meth:`inc` rejects negative amounts; the rare bookkeeping that must
    *undo* an event that never happened (an abandoned submission) uses
    :meth:`add`, which accepts signed amounts and is deliberately uglier
    to reach for.
    """

    kind = "counter"

    def __init__(self, name, help="", labels=None) -> None:
        super().__init__(name, help, labels)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ReproError("Counter.inc amount must be non-negative")
        with self._lock:
            self._value += amount

    def add(self, amount: int) -> None:
        """Signed adjustment (compensating bookkeeping only)."""
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value


class Gauge(Metric):
    """A point-in-time value: set/inc/dec, or computed on read via ``fn``."""

    kind = "gauge"

    def __init__(self, name, help="", labels=None, fn: Optional[Callable] = None) -> None:
        super().__init__(name, help, labels)
        self._value = 0
        self._fn = fn

    def set(self, value) -> None:
        if self._fn is not None:
            raise ReproError(f"gauge {self.name} is callback-backed; cannot set")
        with self._lock:
            self._value = value

    def set_max(self, value) -> None:
        """Raise the gauge to ``value`` if larger (high-watermark gauges)."""
        if self._fn is not None:
            raise ReproError(f"gauge {self.name} is callback-backed; cannot set")
        with self._lock:
            if value > self._value:
                self._value = value

    def inc(self, amount=1) -> None:
        if self._fn is not None:
            raise ReproError(f"gauge {self.name} is callback-backed; cannot inc")
        with self._lock:
            self._value += amount

    def dec(self, amount=1) -> None:
        self.inc(-amount)

    @property
    def value(self):
        if self._fn is not None:
            return self._fn()
        with self._lock:
            return self._value


class Histogram(Metric):
    """Fixed log-bucket distribution with O(buckets) percentile reads.

    Bucket ``i`` (0-based) covers ``[lowest * growth**(i-1), lowest *
    growth**i)`` with bucket 0 the underflow ``[0, lowest)`` and the last
    bucket open-ended.  ``observe`` computes the bucket index with one
    ``log`` — O(1), no allocation — and ``percentile`` walks the
    cumulative counts once, interpolating linearly inside the winning
    bucket, so a scrape costs O(buckets) regardless of how many samples
    were observed.  Memory is exactly ``num_buckets`` ints.
    """

    kind = "histogram"

    def __init__(
        self,
        name,
        help="",
        labels=None,
        lowest: float = DEFAULT_LOWEST,
        growth: float = DEFAULT_GROWTH,
        num_buckets: int = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        if lowest <= 0.0:
            raise ReproError("histogram lowest bound must be positive")
        if growth <= 1.0:
            raise ReproError("histogram growth must be > 1")
        if num_buckets < 2:
            raise ReproError("histogram needs at least 2 buckets")
        self.lowest = float(lowest)
        self.growth = float(growth)
        self.num_buckets = int(num_buckets)
        self._log_growth = math.log(self.growth)
        # bucket upper bounds; the final bucket is open-ended (+inf)
        self.bounds: List[float] = [
            self.lowest * self.growth**index for index in range(num_buckets - 1)
        ]
        self._counts = [0] * num_buckets
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        if value < self.lowest:
            index = 0
        else:
            index = 1 + int(math.log(value / self.lowest) / self._log_growth)
            if index >= self.num_buckets:
                index = self.num_buckets - 1
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> List[int]:
        with self._lock:
            return list(self._counts)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100); 0.0 with no observations.

        The returned value is the linear interpolation of the target rank
        inside its bucket, so the worst-case relative error is one
        bucket's width (``growth - 1``).
        """
        if not 0.0 <= q <= 100.0:
            raise ReproError("percentile q must be in [0, 100]")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            rank = (q / 100.0) * total
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= rank and bucket_count > 0:
                    lower = 0.0 if index == 0 else self.bounds[index - 1]
                    upper = (
                        self.bounds[index]
                        if index < len(self.bounds)
                        else self.bounds[-1] * self.growth
                    )
                    fraction = (rank - (cumulative - bucket_count)) / bucket_count
                    return lower + fraction * (upper - lower)
            return self.bounds[-1] * self.growth  # unreachable with count > 0

    def summary(self) -> Dict[str, float]:
        """The scrape-friendly digest exported by the registry snapshot."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


#: Idle gap (seconds) beyond which an activity window stops accruing time
#: between events.  Larger than any healthy inter-frame gap at serving
#: rates, smaller than any deliberate pause between replays.
DEFAULT_ACTIVITY_GAP_S = 0.5


class ActivityWindow:
    """Accumulated *active* serving time, ignoring idle gaps.

    The legacy ``elapsed_s`` spans first-submit→last-complete across a
    server's whole lifetime, so two replays separated by a minute of idle
    report a deflated ``throughput_fps``.  This window instead accrues
    ``min(now - last_event, gap_s)`` on every submit/complete event: time
    between back-to-back frames counts fully, while any pause longer than
    ``gap_s`` contributes at most ``gap_s``.  ``active_throughput =
    completed / active_s`` then describes the server *while it was
    serving*.  Callers serialize :meth:`touch` under their stats lock; the
    clock is injectable for tests.
    """

    def __init__(self, gap_s: float = DEFAULT_ACTIVITY_GAP_S, clock=None) -> None:
        if gap_s <= 0.0:
            raise ReproError("activity gap must be positive")
        import time as _time

        self.gap_s = float(gap_s)
        self._clock = clock if clock is not None else _time.perf_counter
        self._active_s = 0.0
        self._last_event_s: Optional[float] = None

    def touch(self) -> None:
        """Record one serving event (a submit or a completion)."""
        now = self._clock()
        if self._last_event_s is not None:
            self._active_s += min(max(0.0, now - self._last_event_s), self.gap_s)
        self._last_event_s = now

    @property
    def active_s(self) -> float:
        return self._active_s


class MetricsRegistry:
    """Name+labels → metric store with snapshot/JSON/Prometheus exposition.

    ``counter`` / ``gauge`` / ``histogram`` are **get-or-create**: asking
    for an existing (name, labels) pair returns the existing instance, so
    independent views (server stats, per-worker stats, cache gauges) can
    share one registry without coordination.  Re-registering a name as a
    different metric kind raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name, help, labels, **kwargs) -> Metric:
        key = (name, tuple(sorted((str(k), str(v)) for k, v in (labels or {}).items())))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ReproError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help=help, labels=labels, **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, help: str = "", labels=None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels=None, fn=None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels, fn=fn)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels=None,
        lowest: float = DEFAULT_LOWEST,
        growth: float = DEFAULT_GROWTH,
        num_buckets: int = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram,
            name,
            help,
            labels,
            lowest=lowest,
            growth=growth,
            num_buckets=num_buckets,
        )

    # -- introspection / exposition ----------------------------------------
    def metrics(self) -> List[Metric]:
        with self._lock:
            return list(self._metrics.values())

    def metric_names(self) -> List[str]:
        """Sorted, de-duplicated base names (labels folded together)."""
        with self._lock:
            return sorted({metric.name for metric in self._metrics.values()})

    def snapshot(self) -> Dict[str, object]:
        """One plain dict: ``name{labels}`` → value (histograms → digest)."""
        report: Dict[str, object] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                report[metric.full_name] = metric.summary()
            else:
                report[metric.full_name] = metric.value
        return report

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def prometheus_text(self) -> str:
        """Prometheus text exposition format (one scrape body).

        Histograms export Prometheus-native cumulative ``_bucket`` series
        with ``le`` labels plus ``_sum``/``_count``, so the log-bucket
        layout is directly consumable by a real scraper.
        """
        lines: List[str] = []
        seen_headers = set()
        for metric in sorted(self.metrics(), key=lambda m: m.key):
            if metric.name not in seen_headers:
                seen_headers.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                cumulative = 0
                counts = metric.bucket_counts()
                label_items = list(metric.labels)
                for index, bucket_count in enumerate(counts):
                    cumulative += bucket_count
                    upper = (
                        metric.bounds[index]
                        if index < len(metric.bounds)
                        else float("inf")
                    )
                    le = "+Inf" if math.isinf(upper) else repr(upper)
                    labels = _label_suffix(tuple(label_items + [("le", le)]))
                    lines.append(f"{metric.name}_bucket{labels} {cumulative}")
                suffix = _label_suffix(metric.labels)
                lines.append(f"{metric.name}_sum{suffix} {metric.sum}")
                lines.append(f"{metric.name}_count{suffix} {metric.count}")
            else:
                value = metric.value
                if isinstance(value, bool):
                    value = int(value)
                lines.append(f"{metric.full_name} {value}")
        return "\n".join(lines) + "\n"
