"""Observability layer for the serving stack (``docs/observability.md``).

Three pillars, each importable on its own and all wired through
``repro.serving`` / ``repro.cluster``:

* :mod:`~repro.telemetry.metrics` — ``Counter`` / ``Gauge`` / ``Histogram``
  primitives in a :class:`MetricsRegistry` with JSON and Prometheus text
  exposition; the stack's legacy stats objects are views over one registry.
* :mod:`~repro.telemetry.trace` — near-zero-overhead cross-process frame
  tracing; worker span buffers ride the result queue back to the server,
  which calibrates per-worker clock offsets and exports Chrome trace-event
  JSON loadable in Perfetto.
* :mod:`~repro.telemetry.journal` — typed supervision/routing events with
  monotonic timestamps and the active fault-plan seed, rendering chaos runs
  into postmortem timelines.
"""

from .journal import Event, EventJournal
from .metrics import (
    ActivityWindow,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
)
from .trace import (
    Trace,
    Tracer,
    current_tracer,
    load_chrome_trace,
    set_tracer,
)

__all__ = [
    "ActivityWindow",
    "Counter",
    "Event",
    "EventJournal",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "Trace",
    "Tracer",
    "current_tracer",
    "load_chrome_trace",
    "set_tracer",
]
