"""Thread-pooled multi-frame serving through one shared extraction engine.

The paper's accelerator keeps every pipeline stage busy by streaming frames
through fixed hardware; the software twin gets the same effect from a
:class:`FrameServer`: one :class:`~repro.features.OrbExtractor` — and
therefore ONE detection engine (:mod:`repro.frontend`) and ONE keypoint
compute backend (:mod:`repro.backends`) with all their precomputed tables —
serves many frames in flight on a thread pool.  Extraction is a pure
function of the image, numpy releases the GIL inside the array kernels, and
the vectorized engines keep their scratch buffers in thread-local storage,
so concurrent frames scale across cores without any cross-frame state.

A bounded in-flight window (semaphore) applies back-pressure: submitting
more frames than ``max_in_flight`` blocks the producer instead of queueing
unbounded pixel data, mirroring the bounded line-buffer FIFOs of the
hardware front-end.

Results are returned in submission order and are identical to sequential
extraction (asserted by ``tests/test_serving.py``).
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..config import ExtractorConfig
from ..errors import JobAttempt, JobFailed, ReproError
from ..features import ExtractionResult, OrbExtractor
from ..image import GrayImage


#: How many recent per-frame latencies the stats keep for the percentile
#: columns.  A bounded window keeps long-lived servers at O(1) memory and
#: O(window) percentile reads while still describing current behaviour;
#: the frame *counters* are never windowed.
LATENCY_WINDOW: int = 4096


def percentile_ms(latencies_s: Iterable[float], q: float) -> float:
    """The ``q``-th percentile of per-frame latencies, in milliseconds.

    One definition shared by the thread server's :class:`ServingStats` and
    the process cluster's :class:`repro.cluster.ClusterStats`, so their
    latency columns are always computed the same way.  Returns 0.0 when no
    frame has completed yet.
    """
    values = np.fromiter(latencies_s, dtype=np.float64)
    if values.size == 0:
        return 0.0
    return 1000.0 * float(np.percentile(values, q))


def stable_frame_id(sequence_name: str, frame_index: int) -> int:
    """Deterministic, collision-resistant frame id for pyramid-cache reuse.

    Two runs over the same sequence — even in different processes or with
    different engines — derive the same id for the same frame, so N-engine
    comparisons against one shared pyramid cache attach to ONE cached
    pyramid N times instead of building/publishing N.  The sequence name is
    folded through CRC-32 into the high bits and the frame index occupies
    the low 32 bits, keeping ids non-negative and inside the cache's int64
    header fields while separating same-index frames of different
    sequences.
    """
    if frame_index < 0:
        raise ReproError("frame_index must be non-negative")
    if frame_index >= 1 << 32:
        raise ReproError("frame_index exceeds the 32-bit id field")
    sequence_hash = zlib.crc32(sequence_name.encode("utf-8")) & 0x7FFFFFFF
    return (sequence_hash << 32) | frame_index


def local_extraction_config(config: ExtractorConfig) -> ExtractorConfig:
    """``config`` with process-shared resources swapped for in-process ones.

    The cluster's ``degrade_to_local`` shed policy (and any caller that
    wants a single-process twin of a cluster configuration) cannot use the
    ``shared`` pyramid provider: it presumes a cross-process cache that the
    local fallback neither owns nor should attach to.  Swapping it for the
    ``eager`` provider changes only *where* the pyramid lives — every
    provider builds bit-identical levels — so local results still match
    worker results exactly.
    """
    if config.pyramid.provider != "shared":
        return config
    return config.with_pyramid_provider("eager")


@runtime_checkable
class FrameServing(Protocol):
    """What :meth:`repro.slam.SlamSystem.run` needs from a frame server.

    Both the thread :class:`FrameServer` and the process
    :class:`repro.cluster.ClusterServer` satisfy this protocol: a bounded
    in-flight window (``max_in_flight``), a ``submit`` returning a future
    of the extraction result, and the configuration the serving engines
    were built from (``extractor_config``) for compatibility checks.
    """

    max_in_flight: int

    @property
    def extractor_config(self) -> ExtractorConfig: ...

    def submit(
        self, image: GrayImage, frame_id: Optional[int] = None
    ) -> "Future[ExtractionResult]": ...


@dataclass
class ServingStats:
    """Counters accumulated by a :class:`FrameServer` across its lifetime.

    Besides the in-flight window counters, per-frame extraction latencies
    and the first-submit/last-complete wall-clock span are recorded so the
    thread server reports the same latency percentiles and throughput
    figures as the process cluster (:class:`repro.cluster.ClusterStats`).
    """

    frames_submitted: int = 0
    frames_completed: int = 0
    max_in_flight: int = 0
    latencies_s: "deque[float]" = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW), repr=False
    )
    _in_flight: int = 0
    _first_submit_s: Optional[float] = None
    _last_completed_s: Optional[float] = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def _submitted(self) -> None:
        with self._lock:
            if self._first_submit_s is None:
                self._first_submit_s = time.perf_counter()
            self.frames_submitted += 1
            self._in_flight += 1
            self.max_in_flight = max(self.max_in_flight, self._in_flight)

    def _completed(self, latency_s: float) -> None:
        with self._lock:
            self._last_completed_s = time.perf_counter()
            self.frames_completed += 1
            self._in_flight -= 1
            self.latencies_s.append(latency_s)

    def _abandoned(self) -> None:
        """Undo a submission whose pool hand-off failed (never extracted)."""
        with self._lock:
            self.frames_submitted -= 1
            self._in_flight -= 1

    # -- derived metrics ---------------------------------------------------
    @property
    def latency_p50_ms(self) -> float:
        """Median per-frame extraction latency (milliseconds)."""
        with self._lock:  # snapshot: pool threads append concurrently
            snapshot = tuple(self.latencies_s)
        return percentile_ms(snapshot, 50.0)

    @property
    def latency_p95_ms(self) -> float:
        """95th-percentile per-frame extraction latency (milliseconds)."""
        with self._lock:
            snapshot = tuple(self.latencies_s)
        return percentile_ms(snapshot, 95.0)

    @property
    def elapsed_s(self) -> float:
        """Wall-clock span from first submit to last completion."""
        if self._first_submit_s is None or self._last_completed_s is None:
            return 0.0
        return max(0.0, self._last_completed_s - self._first_submit_s)

    @property
    def throughput_fps(self) -> float:
        """Completed frames per wall-clock second across the server's life."""
        elapsed = self.elapsed_s
        if elapsed <= 0.0:
            return 0.0
        return self.frames_completed / elapsed

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (benchmark reports)."""
        return {
            "frames_submitted": self.frames_submitted,
            "frames_completed": self.frames_completed,
            "max_in_flight": self.max_in_flight,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "elapsed_s": self.elapsed_s,
            "throughput_fps": self.throughput_fps,
        }


class FrameServer:
    """Bounded-queue, thread-pooled frame extraction over one shared engine.

    Parameters
    ----------
    extractor:
        Pre-built extractor to share.  Built from ``config`` when omitted.
    config:
        Extractor configuration used when ``extractor`` is not supplied.
    max_workers:
        Thread-pool width (frames extracted concurrently).
    max_in_flight:
        Back-pressure bound on submitted-but-unfinished frames; defaults to
        ``2 * max_workers`` so the pool always has queued work without
        holding unbounded images alive.
    """

    def __init__(
        self,
        extractor: Optional[OrbExtractor] = None,
        config: Optional[ExtractorConfig] = None,
        max_workers: int = 4,
        max_in_flight: Optional[int] = None,
    ) -> None:
        if max_workers <= 0:
            raise ReproError("max_workers must be positive")
        if extractor is not None and config is not None and extractor.config != config:
            raise ReproError("injected extractor configuration does not match config")
        self.extractor = extractor or OrbExtractor(config)
        self.max_workers = max_workers
        self.max_in_flight = 2 * max_workers if max_in_flight is None else max_in_flight
        if self.max_in_flight < max_workers:
            raise ReproError("max_in_flight must be >= max_workers")
        self.stats = ServingStats()
        self._slots = threading.BoundedSemaphore(self.max_in_flight)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="frame-server"
        )
        self._closed = False

    @property
    def extractor_config(self) -> ExtractorConfig:
        """Configuration of the shared engine (the serving protocol handle)."""
        return self.extractor.config

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Drain and shut the pool down; the server cannot be reused."""
        self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "FrameServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- serving -----------------------------------------------------------
    def submit(
        self,
        image: GrayImage,
        frame_id: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> "Future[ExtractionResult]":
        """Queue one frame; blocks while ``max_in_flight`` frames are pending.

        Returns a future resolving to the same :class:`ExtractionResult`
        sequential extraction would produce.  ``frame_id`` keys pyramid
        reuse when the engine's pyramid provider is ``shared`` (several
        servers over one cache extract the same frame with one build).
        ``deadline_s`` optionally bounds the frame's serving budget: a
        frame still queued behind the pool when its deadline passes fails
        with :class:`~repro.errors.JobFailed` instead of being extracted
        late (checked at extraction start — the thread-server counterpart
        of the cluster's deadline rule, ``docs/serving.md``).
        """
        if self._closed:
            raise ReproError("FrameServer is closed")
        if deadline_s is not None and deadline_s <= 0.0:
            raise ReproError("deadline_s must be positive")
        submitted_s = time.perf_counter()
        deadline = submitted_s + deadline_s if deadline_s is not None else None
        self._slots.acquire()
        self.stats._submitted()
        try:
            future = self._pool.submit(
                self._extract_one, image, frame_id, deadline, submitted_s
            )
        except BaseException:
            self.stats._abandoned()
            self._slots.release()
            raise
        return future

    def _extract_one(
        self,
        image: GrayImage,
        frame_id: Optional[int] = None,
        deadline: Optional[float] = None,
        submitted_s: Optional[float] = None,
    ) -> ExtractionResult:
        start = time.perf_counter()
        try:
            if deadline is not None and start > deadline:
                elapsed = start - (submitted_s if submitted_s is not None else start)
                raise JobFailed(
                    "frame deadline expired before extraction started",
                    (
                        JobAttempt(
                            worker_id=-1,
                            reason="deadline expired in the thread-pool queue",
                            elapsed_s=elapsed,
                        ),
                    ),
                )
            return self.extractor.extract(image, frame_id=frame_id)
        finally:
            self.stats._completed(time.perf_counter() - start)
            self._slots.release()

    def extract_many(
        self,
        images: Iterable[GrayImage],
        frame_ids: Optional[Sequence[int]] = None,
    ) -> List[ExtractionResult]:
        """Extract every image through the shared engine; results in order.

        Submission interleaves with completion (the in-flight window keeps
        the pool saturated while the producer is still iterating), so this
        also serves as the pipelined entry point for whole sequences.
        """
        futures = [
            self.submit(image, frame_id=frame_ids[index] if frame_ids else None)
            for index, image in enumerate(images)
        ]
        return [future.result() for future in futures]

    def map_frames(
        self, frames: Sequence, max_frames: Optional[int] = None
    ) -> List[ExtractionResult]:
        """Extract the ``.image`` of dataset frames (RGB-D or SLAM frames)."""
        images = [
            frame.image
            for index, frame in enumerate(frames)
            if max_frames is None or index < max_frames
        ]
        return self.extract_many(images)
