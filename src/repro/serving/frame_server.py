"""Thread-pooled multi-frame serving through one shared extraction engine.

The paper's accelerator keeps every pipeline stage busy by streaming frames
through fixed hardware; the software twin gets the same effect from a
:class:`FrameServer`: one :class:`~repro.features.OrbExtractor` — and
therefore ONE detection engine (:mod:`repro.frontend`) and ONE keypoint
compute backend (:mod:`repro.backends`) with all their precomputed tables —
serves many frames in flight on a thread pool.  Extraction is a pure
function of the image, numpy releases the GIL inside the array kernels, and
the vectorized engines keep their scratch buffers in thread-local storage,
so concurrent frames scale across cores without any cross-frame state.

A bounded in-flight window (semaphore) applies back-pressure: submitting
more frames than ``max_in_flight`` blocks the producer instead of queueing
unbounded pixel data, mirroring the bounded line-buffer FIFOs of the
hardware front-end.

Results are returned in submission order and are identical to sequential
extraction (asserted by ``tests/test_serving.py``).
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Iterable, List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..config import ExtractorConfig
from ..errors import JobAttempt, JobFailed, ReproError
from ..features import ExtractionResult, OrbExtractor
from ..image import GrayImage


#: How many recent per-frame latencies the stats keep for the percentile
#: columns.  A bounded window keeps long-lived servers at O(1) memory and
#: O(window) percentile reads while still describing current behaviour;
#: the frame *counters* are never windowed.
LATENCY_WINDOW: int = 4096


def percentile_ms(latencies_s: Iterable[float], q: float) -> float:
    """The ``q``-th percentile of per-frame latencies, in milliseconds.

    One definition shared by the thread server's :class:`ServingStats` and
    the process cluster's :class:`repro.cluster.ClusterStats`, so their
    latency columns are always computed the same way.  Returns 0.0 when no
    frame has completed yet.
    """
    values = np.fromiter(latencies_s, dtype=np.float64)
    if values.size == 0:
        return 0.0
    return 1000.0 * float(np.percentile(values, q))


def stable_frame_id(sequence_name: str, frame_index: int) -> int:
    """Deterministic, collision-resistant frame id for pyramid-cache reuse.

    Two runs over the same sequence — even in different processes or with
    different engines — derive the same id for the same frame, so N-engine
    comparisons against one shared pyramid cache attach to ONE cached
    pyramid N times instead of building/publishing N.  The sequence name is
    folded through CRC-32 into the high bits and the frame index occupies
    the low 32 bits, keeping ids non-negative and inside the cache's int64
    header fields while separating same-index frames of different
    sequences.
    """
    if frame_index < 0:
        raise ReproError("frame_index must be non-negative")
    if frame_index >= 1 << 32:
        raise ReproError("frame_index exceeds the 32-bit id field")
    sequence_hash = zlib.crc32(sequence_name.encode("utf-8")) & 0x7FFFFFFF
    return (sequence_hash << 32) | frame_index


def local_extraction_config(config: ExtractorConfig) -> ExtractorConfig:
    """``config`` with process-shared resources swapped for in-process ones.

    The cluster's ``degrade_to_local`` shed policy (and any caller that
    wants a single-process twin of a cluster configuration) cannot use the
    ``shared`` pyramid provider: it presumes a cross-process cache that the
    local fallback neither owns nor should attach to.  Swapping it for the
    ``eager`` provider changes only *where* the pyramid lives — every
    provider builds bit-identical levels — so local results still match
    worker results exactly.
    """
    if config.pyramid.provider != "shared":
        return config
    return config.with_pyramid_provider("eager")


@runtime_checkable
class FrameServing(Protocol):
    """What :meth:`repro.slam.SlamSystem.run` needs from a frame server.

    Both the thread :class:`FrameServer` and the process
    :class:`repro.cluster.ClusterServer` satisfy this protocol: a bounded
    in-flight window (``max_in_flight``), a ``submit`` returning a future
    of the extraction result, and the configuration the serving engines
    were built from (``extractor_config``) for compatibility checks.
    """

    max_in_flight: int

    @property
    def extractor_config(self) -> ExtractorConfig: ...

    def submit(
        self, image: GrayImage, frame_id: Optional[int] = None
    ) -> "Future[ExtractionResult]": ...


class ServingStats:
    """Counters accumulated by a :class:`FrameServer` across its lifetime.

    Since the telemetry layer landed this is a **view over a
    :class:`~repro.telemetry.MetricsRegistry`** (``serving_*`` metrics —
    naming scheme in ``docs/observability.md``): the counter/gauge
    attributes read the registry, the latency percentiles read a bounded
    log-bucket histogram (a scrape never snapshots+sorts a deque under the
    lock any more), and every ``as_dict()`` key of the pre-registry
    dataclass is preserved.  ``latencies_s`` — the bounded recent-latency
    deque — is still maintained for callers that consume raw samples.

    Besides the legacy first-submit→last-complete span (which deflates
    across idle gaps between replays), the stats track an
    :class:`~repro.telemetry.ActivityWindow` and report
    ``active_elapsed_s`` / ``active_throughput_fps``: throughput over the
    time the server was actually serving.
    """

    def __init__(self, registry=None, _clock=None) -> None:
        from ..telemetry import ActivityWindow, MetricsRegistry

        self.registry = registry if registry is not None else MetricsRegistry()
        self.latencies_s: "deque[float]" = deque(maxlen=LATENCY_WINDOW)
        self._clock = _clock if _clock is not None else time.perf_counter
        self._in_flight_gauge = self.registry.gauge(
            "serving_in_flight", help="frames submitted but not yet completed"
        )
        self._submitted_counter = self.registry.counter(
            "serving_frames_submitted_total", help="frames accepted by submit()"
        )
        self._completed_counter = self.registry.counter(
            "serving_frames_completed_total", help="frames completed (or failed)"
        )
        self._max_in_flight_gauge = self.registry.gauge(
            "serving_max_in_flight", help="high-watermark of the in-flight window"
        )
        self._latency_histogram = self.registry.histogram(
            "serving_latency_s", help="per-frame extraction latency (seconds)"
        )
        self._active_gauge = self.registry.gauge(
            "serving_active_s", help="accumulated active serving time (idle gaps capped)"
        )
        self._window = ActivityWindow(clock=self._clock)
        self._first_submit_s: Optional[float] = None
        self._last_completed_s: Optional[float] = None
        self._lock = threading.Lock()

    # -- registry-backed counters (legacy attribute names) -----------------
    @property
    def frames_submitted(self) -> int:
        return self._submitted_counter.value

    @property
    def frames_completed(self) -> int:
        return self._completed_counter.value

    @property
    def max_in_flight(self) -> int:
        return self._max_in_flight_gauge.value

    @property
    def _in_flight(self) -> int:
        return self._in_flight_gauge.value

    def _touch_window(self) -> None:
        """Advance the activity window (caller holds ``self._lock``)."""
        self._window.touch()
        self._active_gauge.set(self._window.active_s)

    def _submitted(self) -> None:
        with self._lock:
            if self._first_submit_s is None:
                self._first_submit_s = self._clock()
            self._submitted_counter.inc()
            self._in_flight_gauge.inc()
            self._max_in_flight_gauge.set_max(self._in_flight_gauge.value)
            self._touch_window()

    def _completed(self, latency_s: float) -> None:
        with self._lock:
            self._last_completed_s = self._clock()
            self._completed_counter.inc()
            self._in_flight_gauge.dec()
            self.latencies_s.append(latency_s)
            self._latency_histogram.observe(latency_s)
            self._touch_window()

    def _abandoned(self) -> None:
        """Undo a submission whose pool hand-off failed (never extracted)."""
        with self._lock:
            self._submitted_counter.add(-1)
            self._in_flight_gauge.dec()

    # -- derived metrics ---------------------------------------------------
    @property
    def latency_p50_ms(self) -> float:
        """Median per-frame extraction latency (milliseconds).

        Reads the bounded log-bucket histogram: O(buckets), no deque
        snapshot or sort under the stats lock.
        """
        return 1000.0 * self._latency_histogram.percentile(50.0)

    @property
    def latency_p95_ms(self) -> float:
        """95th-percentile per-frame extraction latency (milliseconds)."""
        return 1000.0 * self._latency_histogram.percentile(95.0)

    @property
    def elapsed_s(self) -> float:
        """Wall-clock span from first submit to last completion."""
        if self._first_submit_s is None or self._last_completed_s is None:
            return 0.0
        return max(0.0, self._last_completed_s - self._first_submit_s)

    @property
    def throughput_fps(self) -> float:
        """Completed frames per wall-clock second across the server's life."""
        elapsed = self.elapsed_s
        if elapsed <= 0.0:
            return 0.0
        return self.frames_completed / elapsed

    @property
    def active_elapsed_s(self) -> float:
        """Accumulated *active* serving time (idle gaps capped at the
        activity window's gap — ``docs/observability.md``)."""
        with self._lock:
            return self._window.active_s

    @property
    def active_throughput_fps(self) -> float:
        """Completed frames per second of active serving time — immune to
        idle gaps between replays, unlike the legacy ``throughput_fps``."""
        active = self.active_elapsed_s
        if active <= 0.0:
            return 0.0
        return self.frames_completed / active

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (benchmark reports).

        Every pre-telemetry key is preserved; ``active_elapsed_s`` /
        ``active_throughput_fps`` are additive.
        """
        return {
            "frames_submitted": self.frames_submitted,
            "frames_completed": self.frames_completed,
            "max_in_flight": self.max_in_flight,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "elapsed_s": self.elapsed_s,
            "throughput_fps": self.throughput_fps,
            "active_elapsed_s": self.active_elapsed_s,
            "active_throughput_fps": self.active_throughput_fps,
        }


class FrameServer:
    """Bounded-queue, thread-pooled frame extraction over one shared engine.

    Parameters
    ----------
    extractor:
        Pre-built extractor to share.  Built from ``config`` when omitted.
    config:
        Extractor configuration used when ``extractor`` is not supplied.
    max_workers:
        Thread-pool width (frames extracted concurrently).
    max_in_flight:
        Back-pressure bound on submitted-but-unfinished frames; defaults to
        ``2 * max_workers`` so the pool always has queued work without
        holding unbounded images alive.
    registry:
        Optional :class:`~repro.telemetry.MetricsRegistry` the server's
        :class:`ServingStats` registers its metrics in (a private registry
        is created when omitted); pass one registry to several servers to
        scrape them as one surface.
    tracer:
        Optional :class:`~repro.telemetry.Tracer`; when enabled, submit /
        extract spans and per-frame ``resolve`` instants are recorded
        (``docs/observability.md``).  Defaults to a disabled no-op tracer.
    """

    def __init__(
        self,
        extractor: Optional[OrbExtractor] = None,
        config: Optional[ExtractorConfig] = None,
        max_workers: int = 4,
        max_in_flight: Optional[int] = None,
        registry=None,
        tracer=None,
    ) -> None:
        from ..telemetry import Tracer

        if max_workers <= 0:
            raise ReproError("max_workers must be positive")
        if extractor is not None and config is not None and extractor.config != config:
            raise ReproError("injected extractor configuration does not match config")
        self.extractor = extractor or OrbExtractor(config)
        self.max_workers = max_workers
        self.max_in_flight = 2 * max_workers if max_in_flight is None else max_in_flight
        if self.max_in_flight < max_workers:
            raise ReproError("max_in_flight must be >= max_workers")
        self.tracer = tracer if tracer is not None else Tracer(track="serving")
        self.stats = ServingStats(registry=registry)
        self.registry = self.stats.registry
        self._slots = threading.BoundedSemaphore(self.max_in_flight)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="frame-server"
        )
        self._closed = False

    @property
    def extractor_config(self) -> ExtractorConfig:
        """Configuration of the shared engine (the serving protocol handle)."""
        return self.extractor.config

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Drain and shut the pool down; the server cannot be reused."""
        self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "FrameServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- serving -----------------------------------------------------------
    def submit(
        self,
        image: GrayImage,
        frame_id: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> "Future[ExtractionResult]":
        """Queue one frame; blocks while ``max_in_flight`` frames are pending.

        Returns a future resolving to the same :class:`ExtractionResult`
        sequential extraction would produce.  ``frame_id`` keys pyramid
        reuse when the engine's pyramid provider is ``shared`` (several
        servers over one cache extract the same frame with one build).
        ``deadline_s`` optionally bounds the frame's serving budget: a
        frame still queued behind the pool when its deadline passes fails
        with :class:`~repro.errors.JobFailed` instead of being extracted
        late (checked at extraction start — the thread-server counterpart
        of the cluster's deadline rule, ``docs/serving.md``).
        """
        if self._closed:
            raise ReproError("FrameServer is closed")
        if deadline_s is not None and deadline_s <= 0.0:
            raise ReproError("deadline_s must be positive")
        submitted_s = time.perf_counter()
        deadline = submitted_s + deadline_s if deadline_s is not None else None
        with self.tracer.span("submit", frame=frame_id):
            self._slots.acquire()
            self.stats._submitted()
            try:
                future = self._pool.submit(
                    self._extract_one, image, frame_id, deadline, submitted_s
                )
            except BaseException:
                self.stats._abandoned()
                self._slots.release()
                raise
        return future

    def _extract_one(
        self,
        image: GrayImage,
        frame_id: Optional[int] = None,
        deadline: Optional[float] = None,
        submitted_s: Optional[float] = None,
    ) -> ExtractionResult:
        start = time.perf_counter()
        try:
            if deadline is not None and start > deadline:
                elapsed = start - (submitted_s if submitted_s is not None else start)
                raise JobFailed(
                    "frame deadline expired before extraction started",
                    (
                        JobAttempt(
                            worker_id=-1,
                            reason="deadline expired in the thread-pool queue",
                            elapsed_s=elapsed,
                        ),
                    ),
                )
            with self.tracer.span("extract", frame=frame_id):
                return self.extractor.extract(image, frame_id=frame_id)
        finally:
            if submitted_s is not None:
                # pool-queue wait: cross-thread by nature, so an async record
                self.tracer.record("queue_wait", submitted_s, start, frame=frame_id)
            self.stats._completed(time.perf_counter() - start)
            self.tracer.instant("resolve", frame=frame_id)
            self._slots.release()

    def extract_many(
        self,
        images: Iterable[GrayImage],
        frame_ids: Optional[Sequence[int]] = None,
    ) -> List[ExtractionResult]:
        """Extract every image through the shared engine; results in order.

        Submission interleaves with completion (the in-flight window keeps
        the pool saturated while the producer is still iterating), so this
        also serves as the pipelined entry point for whole sequences.
        """
        futures = [
            self.submit(image, frame_id=frame_ids[index] if frame_ids else None)
            for index, image in enumerate(images)
        ]
        return [future.result() for future in futures]

    def map_frames(
        self, frames: Sequence, max_frames: Optional[int] = None
    ) -> List[ExtractionResult]:
        """Extract the ``.image`` of dataset frames (RGB-D or SLAM frames)."""
        images = [
            frame.image
            for index, frame in enumerate(frames)
            if max_frames is None or index < max_frames
        ]
        return self.extract_many(images)
