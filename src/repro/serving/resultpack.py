"""Flat-buffer codec for :class:`~repro.features.ExtractionResult`.

The cluster's inbound transports never pickle pixels — frames travel
through shared-memory ring slots and pyramids through the shared cache —
but the *return* path used to serialize every result (descriptor matrix,
keypoint arrays, per-feature objects) through ``pickle`` on a
``multiprocessing`` queue.  This module is the reverse-direction codec
that closes that gap: a result is packed into ONE flat, contiguous
``uint8`` buffer whose layout is plain arrays end to end, so a worker can
write it straight into a :class:`~repro.cluster.result_ring.SharedResultRing`
slot and the collector can rebuild a bit-identical result with a single
memcpy (or none, for short-lived consumers).

Layout (all sections 8-byte aligned, little-endian ``int64``/``float64``):

====================  =======================================================
section               contents
====================  =======================================================
header                ``int64[12]``: magic, feature count ``N``, descriptor
                      width ``D``, level count ``L``, workflow flag, the six
                      scalar :class:`~repro.features.ExtractionProfile`
                      counters, reserved word
per-level counts      ``int64[L]`` (``profile.per_level_keypoints``)
int64 columns         ``levels``, ``xs``, ``ys``, ``orientation_bins``
                      (``-1`` = not computed), each ``int64[N]``
float64 columns       ``scores``, ``orientation_rads`` (``NaN`` = not
                      computed), ``x0``, ``y0``, each ``float64[N]``
descriptors           ``uint8[N * D]`` (row-major ``(N, D)`` matrix)
====================  =======================================================

``pack_into`` + ``unpack_result`` round-trip to a bit-identical result
(``tests/test_resultpack.py`` asserts record-level equality across
randomized feature counts and every engine pair).  Unpacking builds the
result **arrays-first** (:meth:`ExtractionResult.from_arrays`), so
per-feature objects are only materialised if a consumer actually asks for
them — the tracker hot path reads the dense arrays and never does.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import ReproError
from ..features import ExtractionResult, FeatureArrays
from ..features.orb import ExtractionProfile

#: Format tag checked on unpack ("RPK1" as an integer).
RESULT_PACK_MAGIC = 0x52504B31

_HEADER_WORDS = 12
(
    _H_MAGIC,
    _H_COUNT,
    _H_DESC_WIDTH,
    _H_NUM_LEVELS,
    _H_WORKFLOW,
    _H_PIXELS,
    _H_DETECTED,
    _H_AFTER_NMS,
    _H_DESCRIBED,
    _H_RETAINED,
    _H_HEAP_CMP,
    _H_RESERVED,
) = range(_HEADER_WORDS)

_WORKFLOWS = ("original", "rescheduled")

#: int64 columns packed per feature (levels, xs, ys, orientation_bins).
_INT_COLUMNS = 4
#: float64 columns packed per feature (scores, rads, x0, y0).
_FLOAT_COLUMNS = 4


def _align8(nbytes: int) -> int:
    return (nbytes + 7) & ~7


def packed_nbytes(result: ExtractionResult) -> int:
    """Exact buffer size :func:`pack_into` needs for ``result``."""
    arrays = result.feature_arrays()
    count = len(arrays)
    width = arrays.descriptors.shape[1] if count else 32
    return packed_nbytes_for(
        count, width, len(result.profile.per_level_keypoints)
    )


def packed_nbytes_for(count: int, descriptor_width: int, num_levels: int) -> int:
    """Buffer size for ``count`` features of ``descriptor_width`` bytes."""
    return (
        _HEADER_WORDS * 8
        + num_levels * 8
        + count * (_INT_COLUMNS + _FLOAT_COLUMNS) * 8
        + _align8(count * descriptor_width)
    )


def max_packed_nbytes(config) -> int:
    """Worst-case packed size for results of an extractor ``config``.

    Sizes shared result-ring slots: the heap retains at most
    ``config.max_features`` features of 32 descriptor bytes each, and the
    profile records one per-level count per pyramid level.
    """
    return packed_nbytes_for(
        config.max_features, 32, config.pyramid.num_levels
    )


def pack_into(result: ExtractionResult, buffer: Union[np.ndarray, memoryview]) -> int:
    """Pack ``result`` into ``buffer`` (1-D writable uint8); returns bytes used.

    Raises :class:`~repro.errors.ReproError` when the buffer is too small —
    callers holding a fixed-size ring slot fall back to the pickle
    transport instead of corrupting the slot.
    """
    view = np.frombuffer(buffer, dtype=np.uint8) if isinstance(buffer, memoryview) else buffer
    if view.ndim != 1 or view.dtype != np.uint8:
        raise ReproError("result pack buffers are 1-D uint8 arrays")
    profile = result.profile
    if profile.workflow not in _WORKFLOWS:
        raise ReproError(f"unknown extraction workflow {profile.workflow!r}")
    arrays = result.feature_arrays()
    count = len(arrays)
    width = int(arrays.descriptors.shape[1]) if count else 32
    num_levels = len(profile.per_level_keypoints)
    total = packed_nbytes_for(count, width, num_levels)
    if total > view.size:
        raise ReproError(
            f"packed result of {total} bytes exceeds the {view.size}-byte buffer"
        )

    header = np.zeros(_HEADER_WORDS, dtype=np.int64)
    header[_H_MAGIC] = RESULT_PACK_MAGIC
    header[_H_COUNT] = count
    header[_H_DESC_WIDTH] = width
    header[_H_NUM_LEVELS] = num_levels
    header[_H_WORKFLOW] = _WORKFLOWS.index(profile.workflow)
    header[_H_PIXELS] = profile.pixels_processed
    header[_H_DETECTED] = profile.keypoints_detected
    header[_H_AFTER_NMS] = profile.keypoints_after_nms
    header[_H_DESCRIBED] = profile.descriptors_computed
    header[_H_RETAINED] = profile.features_retained
    header[_H_HEAP_CMP] = profile.heap_comparisons

    offset = 0

    def put(column: np.ndarray) -> None:
        nonlocal offset
        raw = np.ascontiguousarray(column).view(np.uint8).reshape(-1)
        view[offset : offset + raw.size] = raw
        offset = _align8(offset + raw.size)

    put(header)
    put(np.asarray(profile.per_level_keypoints, dtype=np.int64))
    put(arrays.levels.astype(np.int64, copy=False))
    put(arrays.xs.astype(np.int64, copy=False))
    put(arrays.ys.astype(np.int64, copy=False))
    put(arrays.orientation_bins.astype(np.int64, copy=False))
    put(arrays.scores.astype(np.float64, copy=False))
    put(arrays.orientation_rads.astype(np.float64, copy=False))
    put(arrays.x0.astype(np.float64, copy=False))
    put(arrays.y0.astype(np.float64, copy=False))
    put(arrays.descriptors.astype(np.uint8, copy=False))
    assert offset == total
    return total


def pack_result(result: ExtractionResult) -> bytes:
    """Pack ``result`` into a fresh ``bytes`` blob (convenience wrapper)."""
    buffer = np.empty(packed_nbytes(result), dtype=np.uint8)
    used = pack_into(result, buffer)
    return buffer[:used].tobytes()


def unpack_result(
    buffer: Union[bytes, np.ndarray, memoryview], copy: bool = True
) -> ExtractionResult:
    """Rebuild the packed result; bit-identical to the original.

    With ``copy=True`` (default) every column is copied out of ``buffer``
    in one pass, so the caller may recycle the buffer (free the ring slot)
    immediately.  ``copy=False`` returns zero-copy views into ``buffer``
    for short-lived consumers that finish with the result before the slot
    is reused — the caller keeps the buffer alive for the result's whole
    lifetime.
    """
    view = np.frombuffer(buffer, dtype=np.uint8) if not isinstance(buffer, np.ndarray) else buffer
    if view.ndim != 1 or view.dtype != np.uint8:
        raise ReproError("result pack buffers are 1-D uint8 arrays")
    if view.size < _HEADER_WORDS * 8:
        raise ReproError("result pack buffer shorter than its header")
    header = np.frombuffer(view[: _HEADER_WORDS * 8], dtype=np.int64)
    if int(header[_H_MAGIC]) != RESULT_PACK_MAGIC:
        raise ReproError(
            f"bad result pack magic {int(header[_H_MAGIC]):#x} "
            f"(expected {RESULT_PACK_MAGIC:#x})"
        )
    count = int(header[_H_COUNT])
    width = int(header[_H_DESC_WIDTH])
    num_levels = int(header[_H_NUM_LEVELS])
    if count < 0 or width <= 0 or num_levels < 0:
        raise ReproError("corrupt result pack header")
    total = packed_nbytes_for(count, width, num_levels)
    if total > view.size:
        raise ReproError(
            f"result pack of {total} bytes truncated to {view.size} bytes"
        )
    offset = _HEADER_WORDS * 8

    def take(length: int, dtype, shape=None) -> np.ndarray:
        nonlocal offset
        nbytes = length * np.dtype(dtype).itemsize
        column = np.frombuffer(view[offset : offset + nbytes], dtype=dtype)
        if shape is not None:
            column = column.reshape(shape)
        offset = _align8(offset + nbytes)
        return column.copy() if copy else column

    per_level = take(num_levels, np.int64)
    arrays = FeatureArrays(
        levels=take(count, np.int64),
        xs=take(count, np.int64),
        ys=take(count, np.int64),
        orientation_bins=take(count, np.int64),
        scores=take(count, np.float64),
        orientation_rads=take(count, np.float64),
        x0=take(count, np.float64),
        y0=take(count, np.float64),
        descriptors=take(count * width, np.uint8, shape=(count, width)),
    )
    profile = ExtractionProfile(
        pixels_processed=int(header[_H_PIXELS]),
        keypoints_detected=int(header[_H_DETECTED]),
        keypoints_after_nms=int(header[_H_AFTER_NMS]),
        descriptors_computed=int(header[_H_DESCRIBED]),
        features_retained=int(header[_H_RETAINED]),
        heap_comparisons=int(header[_H_HEAP_CMP]),
        per_level_keypoints=[int(value) for value in per_level],
        workflow=_WORKFLOWS[int(header[_H_WORKFLOW])],
    )
    return ExtractionResult.from_arrays(arrays, profile)
