"""Multi-frame serving: shared-engine extraction with frames in flight.

:class:`FrameServer` runs many frames through ONE detection engine + keypoint
backend pair on a thread pool with a bounded in-flight window; the process
cluster (:mod:`repro.cluster`) scales the same semantics past the GIL.  Both
satisfy the :class:`FrameServing` protocol consumed by
:meth:`repro.slam.SlamSystem.run`.  See ``docs/serving.md``.
"""

from .frame_server import (
    FrameServer,
    FrameServing,
    ServingStats,
    local_extraction_config,
    percentile_ms,
    stable_frame_id,
)
from .resultpack import (
    RESULT_PACK_MAGIC,
    max_packed_nbytes,
    pack_into,
    pack_result,
    packed_nbytes,
    unpack_result,
)

__all__ = [
    "FrameServer",
    "FrameServing",
    "RESULT_PACK_MAGIC",
    "ServingStats",
    "local_extraction_config",
    "max_packed_nbytes",
    "pack_into",
    "pack_result",
    "packed_nbytes",
    "percentile_ms",
    "stable_frame_id",
    "unpack_result",
]
