"""Multi-frame serving: shared-engine extraction with frames in flight.

:class:`FrameServer` runs many frames through ONE detection engine + keypoint
backend pair on a thread pool with a bounded in-flight window.  See
``docs/frontend.md`` for the architecture.
"""

from .frame_server import FrameServer, ServingStats

__all__ = ["FrameServer", "ServingStats"]
