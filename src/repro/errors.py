"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ImageError(ReproError):
    """Raised for invalid image shapes, dtypes or out-of-range accesses."""


class FeatureError(ReproError):
    """Raised when feature detection or description receives invalid input."""


class DescriptorError(FeatureError):
    """Raised for malformed descriptors or incompatible descriptor pairs."""


class GeometryError(ReproError):
    """Raised for degenerate geometric configurations (e.g. singular poses)."""


class OptimizationError(ReproError):
    """Raised when an optimiser is configured or invoked incorrectly."""


class TrackingError(ReproError):
    """Raised when the SLAM tracker cannot localise a frame."""


class MapError(ReproError):
    """Raised for invalid map operations (duplicate ids, missing points)."""


class DatasetError(ReproError):
    """Raised for malformed datasets, sequences or trajectory files."""


class HardwareModelError(ReproError):
    """Raised by the FPGA accelerator model for invalid configurations."""


class PlatformModelError(ReproError):
    """Raised by the platform runtime / power models."""
