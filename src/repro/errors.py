"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


@dataclass(frozen=True)
class JobAttempt:
    """One failed attempt at serving a frame (crash, stall, deadline).

    ``worker_id`` is the worker that owned the attempt (-1 when the frame
    never reached a worker), ``reason`` states why the attempt ended and
    ``elapsed_s`` measures from the original submission to the failure.
    """

    worker_id: int
    reason: str
    elapsed_s: float


class JobFailed(ReproError):
    """A served frame definitively failed after its retry/deadline budget.

    Unlike a transport-level :class:`ReproError`, the failure is
    *structured*: :attr:`attempts` carries the full per-attempt history
    (which worker, why, and when), so callers can distinguish a deadline
    miss from an exhausted retry budget or a shed submission.
    """

    def __init__(self, message: str, attempts: Sequence[JobAttempt] = ()) -> None:
        super().__init__(message)
        self.attempts: Tuple[JobAttempt, ...] = tuple(attempts)

    def __str__(self) -> str:  # attempt history rides along in logs
        base = super().__str__()
        if not self.attempts:
            return base
        history = "; ".join(
            f"attempt {index + 1}: worker {attempt.worker_id} "
            f"{attempt.reason} after {attempt.elapsed_s:.3f}s"
            for index, attempt in enumerate(self.attempts)
        )
        return f"{base} [{history}]"


class ImageError(ReproError):
    """Raised for invalid image shapes, dtypes or out-of-range accesses."""


class FeatureError(ReproError):
    """Raised when feature detection or description receives invalid input."""


class DescriptorError(FeatureError):
    """Raised for malformed descriptors or incompatible descriptor pairs."""


class GeometryError(ReproError):
    """Raised for degenerate geometric configurations (e.g. singular poses)."""


class OptimizationError(ReproError):
    """Raised when an optimiser is configured or invoked incorrectly."""


class TrackingError(ReproError):
    """Raised when the SLAM tracker cannot localise a frame."""


class MapError(ReproError):
    """Raised for invalid map operations (duplicate ids, missing points)."""


class DatasetError(ReproError):
    """Raised for malformed datasets, sequences or trajectory files."""


class HardwareModelError(ReproError):
    """Raised by the FPGA accelerator model for invalid configurations."""


class PlatformModelError(ReproError):
    """Raised by the platform runtime / power models."""
