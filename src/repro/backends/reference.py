"""The scalar per-keypoint compute backend (bit-exact ground truth).

This is the original software path of the extractor, preserved verbatim: one
:func:`~repro.features.orientation.compute_orientation` call and one
``DescriptorEngine.describe`` call per keypoint.  It defines the reference
semantics the ``vectorized`` backend must reproduce bit for bit, and it is
what ``ExtractorConfig(backend="reference")`` selects.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..image import GrayImage
from .base import DescribedBatch, KeypointBackend, register_backend


@register_backend("reference")
class ReferenceBackend(KeypointBackend):
    """Per-keypoint scalar orientation + description (the ground-truth path)."""

    def describe(
        self,
        smoothed: GrayImage,
        xs: np.ndarray,
        ys: np.ndarray,
        scores: np.ndarray,
    ) -> DescribedBatch:
        from ..features.keypoint import Keypoint
        from ..features.orientation import compute_orientation

        radius = self.config.descriptor.patch_radius
        kept: List[int] = []
        bins: List[int] = []
        rads: List[float] = []
        descriptors: List[np.ndarray] = []
        for index in range(len(xs)):
            x, y = int(xs[index]), int(ys[index])
            if not smoothed.contains(x, y, border=radius):
                continue
            orientation_bin, orientation_rad = compute_orientation(smoothed, x, y, radius=radius)
            keypoint = Keypoint(
                x=x,
                y=y,
                score=float(scores[index]),
                orientation_bin=orientation_bin,
                orientation_rad=orientation_rad,
            )
            descriptors.append(self.descriptor_engine.describe(smoothed, keypoint))
            kept.append(index)
            bins.append(orientation_bin)
            rads.append(orientation_rad)
        if not kept:
            return DescribedBatch.empty(self.config.descriptor.num_bytes)
        kept_array = np.asarray(kept, dtype=np.int64)
        return DescribedBatch(
            xs=np.asarray(xs, dtype=np.int64)[kept_array],
            ys=np.asarray(ys, dtype=np.int64)[kept_array],
            scores=np.asarray(scores, dtype=np.float64)[kept_array],
            orientation_bins=np.asarray(bins, dtype=np.int64),
            orientation_rads=np.asarray(rads, dtype=np.float64),
            descriptors=np.stack(descriptors),
            kept=kept_array,
        )
