"""Keypoint compute backend interface and registry.

The ORB extractor's hot path — orientation computation plus BRIEF/RS-BRIEF
description for every detected keypoint — is delegated to a pluggable
**keypoint compute backend**.  A backend is constructed once from an
:class:`~repro.config.ExtractorConfig`, owns its precomputed tables (circular
masks, rounded pattern locations, rotation gather tables) and then serves any
number of frames.  Two implementations are registered:

* ``reference`` -- the scalar per-keypoint path, kept as bit-exact ground
  truth (:mod:`repro.backends.reference`);
* ``vectorized`` -- the batched default that processes a whole pyramid level
  per numpy pass (:mod:`repro.backends.vectorized`);
* ``hwexact`` -- the fixed-point datapath of the FPGA model: quantized-ratio
  orientation LUT plus RS-BRIEF, bit-identical to :mod:`repro.hw` extraction
  rather than to the float backends (:mod:`repro.backends.hwexact`, see
  ``docs/hwexact.md``).

Backends self-register through :func:`register_backend`, following the same
parameterised-compute-unit-registry idiom as the hardware simulator: the
configuration names the backend (``ExtractorConfig.backend``) and
:func:`create_backend` resolves it.  Third parties can register additional
backends (e.g. a GPU or fixed-point engine) without touching the extractor.

The full-frame half of the extractor — FAST + Harris + NMS + smoothing — is
served by the sibling detection-engine registry in :mod:`repro.frontend`
(``ExtractorConfig.frontend``), which follows this same pattern and the
same bit-exactness contract.  A backend instance must stay thread-safe
across concurrent ``describe`` calls (precomputed tables only, no mutable
per-call state) so that one instance can serve many frames in flight
through :class:`repro.serving.FrameServer`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, ClassVar, List, Type

import numpy as np

from ..config import ExtractorConfig
from ..image import GrayImage, within_border
from ..registry import ClassRegistry


@dataclass(frozen=True)
class DescribedBatch:
    """Per-level output of a backend: arrays over the described keypoints.

    All arrays share the leading dimension ``K`` (keypoints that survived the
    descriptor border check).  ``kept`` maps each row back to the index of the
    keypoint in the input arrays, so callers that pre-selected candidates
    (the original workflow) can scatter results into place.
    """

    xs: np.ndarray
    ys: np.ndarray
    scores: np.ndarray
    orientation_bins: np.ndarray
    orientation_rads: np.ndarray
    descriptors: np.ndarray
    kept: np.ndarray

    @property
    def size(self) -> int:
        return int(self.xs.size)

    @classmethod
    def empty(cls, num_bytes: int) -> "DescribedBatch":
        return cls(
            xs=np.zeros(0, dtype=np.int64),
            ys=np.zeros(0, dtype=np.int64),
            scores=np.zeros(0, dtype=np.float64),
            orientation_bins=np.zeros(0, dtype=np.int64),
            orientation_rads=np.zeros(0, dtype=np.float64),
            descriptors=np.zeros((0, num_bytes), dtype=np.uint8),
            kept=np.zeros(0, dtype=np.int64),
        )


class KeypointBackend(ABC):
    """Batched orientation + description engine behind the ORB extractor.

    A backend instance is stateless across frames apart from its precomputed
    tables, so one instance can serve many extractors, sequences and
    configurations (see :class:`repro.analysis.experiments.BatchRunner`).
    """

    name: ClassVar[str] = "abstract"

    def __init__(self, config: ExtractorConfig) -> None:
        # local import: repro.features imports the extractor which resolves
        # backends lazily, so importing the engine factory here keeps the
        # package import graph acyclic regardless of which side loads first
        from ..features.brief import make_descriptor_engine

        self.config = config
        self.descriptor_engine = make_descriptor_engine(config.use_rs_brief, config.descriptor)

    def patch_radius(self) -> int:
        """Border margin the descriptor pattern needs around a keypoint."""
        return self.descriptor_engine.patch_radius()

    def valid_mask(self, image: GrayImage, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Keypoints whose orientation patch fits inside ``image``.

        Mirrors the scalar path's ``image.contains(x, y, border=radius)``
        check with ``radius = descriptor.patch_radius``.
        """
        return within_border(xs, ys, image.shape, self.config.descriptor.patch_radius)

    @abstractmethod
    def describe(
        self,
        smoothed: GrayImage,
        xs: np.ndarray,
        ys: np.ndarray,
        scores: np.ndarray,
    ) -> DescribedBatch:
        """Orient and describe the keypoints at ``(xs, ys)`` on one level.

        ``smoothed`` is the Gaussian-blurred pyramid level.  Keypoints whose
        descriptor patch does not fit are dropped (see ``kept``).
        """


_REGISTRY: ClassRegistry[KeypointBackend] = ClassRegistry("keypoint backend")


def register_backend(name: str) -> Callable[[Type[KeypointBackend]], Type[KeypointBackend]]:
    """Class decorator registering a backend under ``name``."""
    return _REGISTRY.register(name)


def available_backends() -> List[str]:
    """Names of all registered backends, sorted."""
    return _REGISTRY.names()


def create_backend(name: str, config: ExtractorConfig | None = None) -> KeypointBackend:
    """Instantiate the backend registered under ``name``."""
    return _REGISTRY.create(name, config or ExtractorConfig())
