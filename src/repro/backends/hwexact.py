"""The quantized fixed-point keypoint compute backend.

Orients and describes whole keypoint batches under the exact arithmetic of
the FPGA datapath model:

* **Orientation** accumulates the intensity centroid over the circular
  patch (exact-integer reductions, bit-identical to the scalar hardware
  unit), quantizes the ratio ``v/u`` to the Q6.10
  :data:`~repro.quant.formats.ORIENTATION_RATIO_FORMAT` and resolves the
  32-way label from the ratio and sign bits — the hardware LUT, no
  ``atan2``.  The continuous angle reported for each feature is the bin
  centre (``bin * 11.25`` degrees): the datapath never produces a finer
  angle, and RS-BRIEF rotation only consumes the bin.
* **Description** evaluates the fixed RS-BRIEF pattern against the
  (quantized-smoothed) level and applies the BRIEF Rotator byte shift —
  the same batched engine as the ``vectorized`` backend, which is already
  proven bit-identical to the hardware BRIEF Computing + Rotator units.

Like the hardware accelerator, this backend requires RS-BRIEF: the original
ORB descriptor needs the 30-pattern LUT the paper's datapath explicitly
avoids.  Holds only immutable tables, so one instance serves many frames in
flight (:class:`repro.serving.FrameServer`).
"""

from __future__ import annotations

import numpy as np

from ..errors import HardwareModelError
from ..image import GrayImage
from ..quant.kernels import intensity_centroids_batched, orientation_bins_quantized
from .base import DescribedBatch, KeypointBackend, register_backend


@register_backend("hwexact")
class HwExactBackend(KeypointBackend):
    """Whole-level batched quantized orientation + RS-BRIEF description."""

    #: keypoints per orientation gather chunk (bounds the (K, P, P) patch stack)
    chunk_size: int = 2048

    def __init__(self, config) -> None:
        if not config.use_rs_brief:
            raise HardwareModelError(
                "the hwexact backend models the accelerator datapath, which "
                "implements RS-BRIEF; the original ORB descriptor requires "
                "the 30-pattern LUT the paper explicitly avoids"
            )
        super().__init__(config)
        from ..features.orientation import ORIENTATION_BIN_RAD, OrientationGrid

        self._grid = OrientationGrid.build(self.config.descriptor.patch_radius)
        self._bin_rad = ORIENTATION_BIN_RAD

    def describe(
        self,
        smoothed: GrayImage,
        xs: np.ndarray,
        ys: np.ndarray,
        scores: np.ndarray,
    ) -> DescribedBatch:
        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        scores = np.asarray(scores, dtype=np.float64)
        kept = np.nonzero(self.valid_mask(smoothed, xs, ys))[0]
        if kept.size == 0:
            return DescribedBatch.empty(self.config.descriptor.num_bytes)
        xs, ys, scores = xs[kept], ys[kept], scores[kept]
        us, vs = intensity_centroids_batched(
            smoothed,
            xs,
            ys,
            radius=self.config.descriptor.patch_radius,
            grid=self._grid,
            chunk_size=self.chunk_size,
        )
        bins = orientation_bins_quantized(us, vs)
        rads = bins.astype(np.float64) * self._bin_rad
        descriptors = self.descriptor_engine.describe_batch(smoothed, xs, ys, bins, rads)
        return DescribedBatch(
            xs=xs,
            ys=ys,
            scores=scores,
            orientation_bins=bins,
            orientation_rads=rads,
            descriptors=descriptors,
            kept=kept,
        )
