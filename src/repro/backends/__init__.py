"""Pluggable keypoint compute backends for the ORB extractor.

See :mod:`repro.backends.base` for the interface and registry; importing this
package registers the three built-in backends (``reference``, ``vectorized``
and the fixed-point ``hwexact``).  ``docs/backends.md`` and
``docs/hwexact.md`` document the architecture.
"""

from .base import (
    DescribedBatch,
    KeypointBackend,
    available_backends,
    create_backend,
    register_backend,
)
from .hwexact import HwExactBackend
from .reference import ReferenceBackend
from .vectorized import VectorizedBackend

__all__ = [
    "DescribedBatch",
    "KeypointBackend",
    "available_backends",
    "create_backend",
    "register_backend",
    "HwExactBackend",
    "ReferenceBackend",
    "VectorizedBackend",
]
