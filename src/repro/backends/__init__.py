"""Pluggable keypoint compute backends for the ORB extractor.

See :mod:`repro.backends.base` for the interface and registry; importing this
package registers the two built-in backends (``reference`` and
``vectorized``).  ``docs/backends.md`` documents the architecture.
"""

from .base import (
    DescribedBatch,
    KeypointBackend,
    available_backends,
    create_backend,
    register_backend,
)
from .reference import ReferenceBackend
from .vectorized import VectorizedBackend

__all__ = [
    "DescribedBatch",
    "KeypointBackend",
    "available_backends",
    "create_backend",
    "register_backend",
    "ReferenceBackend",
    "VectorizedBackend",
]
