"""The batched keypoint compute backend (default).

Processes one pyramid level per call with no Python-level per-keypoint work:

1. gather every keypoint's orientation patch in one fancy-indexing pass and
   reduce all intensity centroids together (precomputed circular-mask and
   coordinate tables, chunked to bound memory);
2. evaluate the descriptor pattern as a single ``(K, 256)`` comparison —
   against the one unrotated RS-BRIEF pattern, or against per-keypoint
   pre-rotated original-ORB patterns gathered from the stacked LUT ROM;
3. pack bits row-wise and, for RS-BRIEF, apply the BRIEF Rotator to the whole
   batch through one byte-gather table.

Every step performs the same arithmetic in the same order as the scalar
``reference`` backend, so the output is bit-identical (asserted by
``tests/test_backends_parity.py``); it is simply issued as array operations
instead of ``K`` Python call chains.
"""

from __future__ import annotations

import numpy as np

from ..image import GrayImage
from .base import DescribedBatch, KeypointBackend, register_backend


@register_backend("vectorized")
class VectorizedBackend(KeypointBackend):
    """Whole-level batched orientation + description."""

    #: keypoints per orientation gather chunk (bounds the (K, P, P) patch stack)
    chunk_size: int = 2048

    def __init__(self, config) -> None:
        super().__init__(config)
        from ..features.orientation import OrientationGrid

        self._grid = OrientationGrid.build(self.config.descriptor.patch_radius)

    def describe(
        self,
        smoothed: GrayImage,
        xs: np.ndarray,
        ys: np.ndarray,
        scores: np.ndarray,
    ) -> DescribedBatch:
        from ..features.orientation import compute_orientations

        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        scores = np.asarray(scores, dtype=np.float64)
        kept = np.nonzero(self.valid_mask(smoothed, xs, ys))[0]
        if kept.size == 0:
            return DescribedBatch.empty(self.config.descriptor.num_bytes)
        xs, ys, scores = xs[kept], ys[kept], scores[kept]
        bins, rads = compute_orientations(
            smoothed,
            xs,
            ys,
            radius=self.config.descriptor.patch_radius,
            grid=self._grid,
            chunk_size=self.chunk_size,
        )
        descriptors = self.descriptor_engine.describe_batch(smoothed, xs, ys, bins, rads)
        return DescribedBatch(
            xs=xs,
            ys=ys,
            scores=scores,
            orientation_bins=bins,
            orientation_rads=rads,
            descriptors=descriptors,
            kept=kept,
        )
