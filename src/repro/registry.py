"""Generic name → class registry behind the pluggable compute layers.

Both engine layers of the extractor — keypoint compute backends
(:mod:`repro.backends`) and detection front-end engines
(:mod:`repro.frontend`) — follow the same parameterised-compute-unit
registry idiom as the hardware simulator: implementations self-register
under a name, the configuration names the implementation, and a factory
resolves it.  :class:`ClassRegistry` is that idiom once, shared by both
(and by any future layer), so registration and lookup semantics cannot
drift between them.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, List, Type, TypeVar

from .errors import FeatureError

T = TypeVar("T")


class ClassRegistry(Generic[T]):
    """Name-keyed class registry with decorator registration.

    ``kind`` is the human-readable noun used in error messages (e.g.
    ``"keypoint backend"``).  Registration stamps the class's ``name``
    attribute so instances can report which implementation they are.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._classes: Dict[str, Type[T]] = {}

    def register(self, name: str) -> Callable[[Type[T]], Type[T]]:
        """Class decorator registering the class under ``name``."""

        def decorator(cls: Type[T]) -> Type[T]:
            if name in self._classes:
                raise FeatureError(f"{self.kind} {name!r} is already registered")
            cls.name = name  # type: ignore[attr-defined]
            self._classes[name] = cls
            return cls

        return decorator

    def names(self) -> List[str]:
        """Registered names, sorted."""
        return sorted(self._classes)

    def create(self, name: str, *args, **kwargs) -> T:
        """Instantiate the class registered under ``name``."""
        if name not in self._classes:
            raise FeatureError(
                f"unknown {self.kind} {name!r}; available: {', '.join(self.names())}"
            )
        return self._classes[name](*args, **kwargs)
