"""Generic name → class registry behind the pluggable compute layers.

Both engine layers of the extractor — keypoint compute backends
(:mod:`repro.backends`) and detection front-end engines
(:mod:`repro.frontend`) — follow the same parameterised-compute-unit
registry idiom as the hardware simulator: implementations self-register
under a name, the configuration names the implementation, and a factory
resolves it.  :class:`ClassRegistry` is that idiom once, shared by both
(and by any future layer), so registration and lookup semantics cannot
drift between them.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, Generic, List, Sequence, Type, TypeVar

from .errors import FeatureError

T = TypeVar("T")


def unknown_name_message(kind: str, name: str, available: Sequence[str]) -> str:
    """Error message for an unresolved registry name.

    One shared formatter for every registry (and for configuration-level
    validation), so an unknown ``ExtractorConfig.backend`` / ``frontend``
    always reports the registered alternatives — plus a closest-match hint
    for the common typo case.
    """
    listed = ", ".join(available) if available else "<none registered>"
    message = f"unknown {kind} {name!r}; available: {listed}"
    close = difflib.get_close_matches(name, list(available), n=1)
    if close:
        message += f" (did you mean {close[0]!r}?)"
    return message


class ClassRegistry(Generic[T]):
    """Name-keyed class registry with decorator registration.

    ``kind`` is the human-readable noun used in error messages (e.g.
    ``"keypoint backend"``).  Registration stamps the class's ``name``
    attribute so instances can report which implementation they are.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._classes: Dict[str, Type[T]] = {}

    def register(self, name: str) -> Callable[[Type[T]], Type[T]]:
        """Class decorator registering the class under ``name``."""

        def decorator(cls: Type[T]) -> Type[T]:
            if name in self._classes:
                raise FeatureError(f"{self.kind} {name!r} is already registered")
            cls.name = name  # type: ignore[attr-defined]
            self._classes[name] = cls
            return cls

        return decorator

    def names(self) -> List[str]:
        """Registered names, sorted."""
        return sorted(self._classes)

    def create(self, name: str, *args, **kwargs) -> T:
        """Instantiate the class registered under ``name``."""
        if name not in self._classes:
            raise FeatureError(unknown_name_message(self.kind, name, self.names()))
        return self._classes[name](*args, **kwargs)
