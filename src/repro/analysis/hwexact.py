"""Cross-validation harness for the quantized ``hwexact`` engine pair.

Two experiments back the tentpole claim of the hardware model:

* :func:`run_hwexact_parity` — the batched ``hwexact`` engines
  (``ExtractorConfig(frontend="hwexact", backend="hwexact")``) must
  reproduce the hardware model's unit-by-unit quantized extraction
  (:meth:`repro.hw.OrbExtractorAccelerator.extract_quantized`) **bit for
  bit**: same retained keypoints, scores, orientation labels, descriptors
  and workload profiles.  The two sides share only the arithmetic kernels
  of :mod:`repro.quant`; orchestration (streaming scalar windows vs whole
  level numpy passes) is independent, so agreement validates both.
* :func:`run_quantization_divergence` — quantifies what fixed-point
  arithmetic *costs* relative to the float ``vectorized`` pipeline:
  keypoint set agreement (exact and within a 1-pixel radius), descriptor
  agreement on shared keypoints, and end-to-end trajectory divergence on a
  synthetic TUM sequence (the paper's accuracy-preservation claim).

Both functions return plain dictionaries so the benchmark harness
(``benchmarks/bench_hwexact_parity.py``) can print them as JSON reports and
``tests/test_hwexact_parity.py`` can assert on them.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

import numpy as np

from ..config import ExtractorConfig, PyramidConfig, SlamConfig, TrackerConfig
from ..dataset import SequenceSpec, make_sequence
from ..features import ExtractionResult, OrbExtractor
from ..image import GrayImage, random_blocks
from ..slam import SlamSystem


def _default_parity_config() -> ExtractorConfig:
    """Small workload: the hw model walks every window in Python."""
    return ExtractorConfig(
        image_width=160,
        image_height=120,
        pyramid=PyramidConfig(num_levels=2),
        max_features=100,
        frontend="hwexact",
        backend="hwexact",
    )


def run_hwexact_parity(
    images: Optional[Sequence[GrayImage]] = None,
    config: Optional[ExtractorConfig] = None,
) -> Dict[str, object]:
    """Engine-pair extraction vs hardware-model quantized extraction.

    Returns per-image feature counts and mismatch counts; ``bit_identical``
    is True only if every feature record *and* every workload profile agrees
    exactly across all images.
    """
    from ..hw import OrbExtractorAccelerator

    config = config or _default_parity_config()
    if images is None:
        images = [
            random_blocks(config.image_height, config.image_width, block=10, seed=seed)
            for seed in (7, 21)
        ]
    engine_extractor = OrbExtractor(config)
    accelerator = OrbExtractorAccelerator(config)
    rows = []
    total_mismatches = 0
    profiles_equal = True
    for index, image in enumerate(images):
        engine_result = engine_extractor.extract(image)
        hw_result, _ = accelerator.extract_quantized(image)
        engine_records = engine_result.feature_records()
        hw_records = hw_result.feature_records()
        mismatches = sum(a != b for a, b in zip(engine_records, hw_records))
        mismatches += abs(len(engine_records) - len(hw_records))
        total_mismatches += mismatches
        profile_match = vars(engine_result.profile) == vars(hw_result.profile)
        profiles_equal = profiles_equal and profile_match
        rows.append(
            {
                "image": index,
                "engine_features": len(engine_records),
                "hw_features": len(hw_records),
                "mismatched_features": mismatches,
                "profile_match": profile_match,
            }
        )
    return {
        "images": len(rows),
        "rows": rows,
        "total_mismatches": total_mismatches,
        "profiles_equal": profiles_equal,
        "bit_identical": total_mismatches == 0 and profiles_equal,
    }


def _keypoint_set(result: ExtractionResult) -> set:
    return {(f.keypoint.level, f.keypoint.x, f.keypoint.y) for f in result.features}


def _coverage_1px(points: set, reference: set) -> float:
    """Fraction of ``points`` with a reference keypoint within 1 pixel."""
    if not points:
        return 1.0
    covered = 0
    for level, x, y in points:
        if any(
            (level, x + dx, y + dy) in reference
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
        ):
            covered += 1
    return covered / len(points)


def compare_float_vs_fixed_extraction(
    image: GrayImage, config: Optional[ExtractorConfig] = None
) -> Dict[str, float]:
    """Keypoint/descriptor agreement between the float and quantized pipelines.

    ``config`` (any engine selection) is re-targeted to the ``vectorized``
    pair for the float run and the ``hwexact`` pair for the fixed run.
    """
    config = config or _default_parity_config()
    float_result = OrbExtractor(
        replace(config, frontend="vectorized", backend="vectorized")
    ).extract(image)
    fixed_result = OrbExtractor(
        replace(config, frontend="hwexact", backend="hwexact")
    ).extract(image)
    float_keys = _keypoint_set(float_result)
    fixed_keys = _keypoint_set(fixed_result)
    common = float_keys & fixed_keys
    union = float_keys | fixed_keys
    float_by_key = {
        (f.keypoint.level, f.keypoint.x, f.keypoint.y): f for f in float_result.features
    }
    fixed_by_key = {
        (f.keypoint.level, f.keypoint.x, f.keypoint.y): f for f in fixed_result.features
    }
    identical_descriptors = 0
    hamming_bits = []
    for key in common:
        xor = np.bitwise_xor(float_by_key[key].descriptor, fixed_by_key[key].descriptor)
        bits = int(np.unpackbits(xor).sum())
        hamming_bits.append(bits)
        identical_descriptors += bits == 0
    return {
        "float_features": float(len(float_keys)),
        "fixed_features": float(len(fixed_keys)),
        "keypoint_jaccard": len(common) / max(1, len(union)),
        "fixed_coverage_1px": _coverage_1px(fixed_keys, float_keys),
        "float_coverage_1px": _coverage_1px(float_keys, fixed_keys),
        "common_keypoints": float(len(common)),
        "descriptor_identical_ratio": (
            identical_descriptors / len(common) if common else 1.0
        ),
        "descriptor_mean_hamming_bits": (
            float(np.mean(hamming_bits)) if hamming_bits else 0.0
        ),
    }


def run_quantization_divergence(
    sequence_name: str = "fr1/xyz",
    num_frames: int = 8,
    image_width: int = 160,
    image_height: int = 120,
    max_features: int = 150,
    harris_score_shift: Optional[int] = None,
    orientation_ratio_format=None,
) -> Dict[str, object]:
    """Float-vs-fixed divergence at extraction and trajectory level.

    Runs the same synthetic TUM sequence through :class:`SlamSystem` twice —
    once with the float ``vectorized`` engine pair, once with the quantized
    ``hwexact`` pair — and reports per-frame extraction agreement plus the
    ATE of each run and the RMSE between the two estimated trajectories.

    ``harris_score_shift`` / ``orientation_ratio_format`` optionally rebind
    the datapath's register-width choices for the duration of the run
    (:func:`repro.quant.quantization_overrides`), which is how
    ``benchmarks/bench_quant_sensitivity.py`` charts accuracy against
    arithmetic precision.  The float pipeline never touches the quantized
    kernels, so overrides only move the ``fixed`` side.
    """
    from ..quant import quantization_overrides

    with quantization_overrides(
        harris_score_shift=harris_score_shift,
        orientation_ratio_format=orientation_ratio_format,
    ):
        return _quantization_divergence_body(
            sequence_name, num_frames, image_width, image_height, max_features
        )


def _quantization_divergence_body(
    sequence_name: str,
    num_frames: int,
    image_width: int,
    image_height: int,
    max_features: int,
) -> Dict[str, object]:
    extractor_config = ExtractorConfig(
        image_width=image_width,
        image_height=image_height,
        pyramid=PyramidConfig(num_levels=2),
        max_features=max_features,
    )
    spec = SequenceSpec(
        name=sequence_name,
        num_frames=num_frames,
        image_width=image_width,
        image_height=image_height,
    )
    sequence = make_sequence(spec)
    extraction = compare_float_vs_fixed_extraction(
        sequence.frames[0].image, extractor_config
    )
    tracker = TrackerConfig(ransac_iterations=64, pose_iterations=10)
    runs = {}
    trajectories = {}
    for label, frontend, backend in (
        ("float", "vectorized", "vectorized"),
        ("fixed", "hwexact", "hwexact"),
    ):
        slam_config = SlamConfig(
            extractor=replace(extractor_config, frontend=frontend, backend=backend),
            tracker=tracker,
        )
        result = SlamSystem(slam_config).run(sequence)
        ate = result.ate()
        trajectories[label] = np.array(
            [pose.translation for pose in result.estimated_poses]
        )
        runs[label] = {
            "ate_mean_cm": ate.mean_cm,
            "ate_rmse_cm": ate.rmse_cm,
            "tracking_success_ratio": result.tracking_success_ratio,
            "features_per_frame": result.mean_workload().get("features_retained", 0.0),
        }
    difference = trajectories["float"] - trajectories["fixed"]
    divergence_m = float(np.sqrt(np.mean(np.sum(difference * difference, axis=1))))
    return {
        "sequence": sequence_name,
        "frames": num_frames,
        "extraction": extraction,
        "float": runs["float"],
        "fixed": runs["fixed"],
        "trajectory_divergence_rmse_cm": 100.0 * divergence_m,
        "ate_delta_cm": runs["fixed"]["ate_mean_cm"] - runs["float"]["ate_mean_cm"],
    }
