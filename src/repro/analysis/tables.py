"""Plain-text table formatting for experiment reports.

The benchmark harness prints the same rows the paper's tables report; these
helpers render lists of dictionaries as aligned ASCII tables so the output of
``pytest benchmarks/`` and the example scripts is directly readable and easy
to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def _format_value(value: object, float_digits: int = 2) -> str:
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Sequence[str] | None = None,
    float_digits: int = 2,
    title: str | None = None,
) -> str:
    """Render ``rows`` (list of dicts) as an aligned ASCII table."""
    if not rows:
        return (title + "\n" if title else "") + "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        [_format_value(row.get(column, ""), float_digits) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(rendered[i]) for rendered in rendered_rows))
        for i, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for rendered in rendered_rows:
        lines.append(
            " | ".join(value.ljust(width) for value, width in zip(rendered, widths))
        )
    return "\n".join(lines)


def format_comparison(
    label: str, paper_value: float, measured_value: float, unit: str = ""
) -> str:
    """One-line paper-vs-measured comparison with the relative deviation."""
    if paper_value != 0:
        deviation = 100.0 * (measured_value - paper_value) / paper_value
        deviation_text = f"{deviation:+.1f}%"
    else:
        deviation_text = "n/a"
    unit_suffix = f" {unit}" if unit else ""
    return (
        f"{label}: paper {paper_value:.2f}{unit_suffix}, "
        f"measured {measured_value:.2f}{unit_suffix} ({deviation_text})"
    )
