"""Experiment runners shared by the benchmark harness and EXPERIMENTS.md.

Each function reproduces one table or figure of the paper and returns plain
data structures (lists of row dictionaries / dataclasses) so they can be
printed by :mod:`repro.analysis.tables`, asserted on by the benchmark suite
and summarised in EXPERIMENTS.md.  Heavy experiments (the Figure 8 accuracy
sweep) accept size parameters so the benchmark suite can run them at reduced
resolution while the example scripts run them at full scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import (
    ExtractorConfig,
    PyramidConfig,
    SlamConfig,
    TrackerConfig,
)
from ..dataset import SequenceSpec, make_sequence
from ..hw import EslamAccelerator
from ..image import GrayImage
from ..platforms import NOMINAL_WORKLOAD, PlatformComparison
from ..slam import SlamSystem


# ---------------------------------------------------------------------------
# Table 1: resource utilisation
# ---------------------------------------------------------------------------
def run_table1_resources() -> Dict[str, object]:
    """FPGA resource utilisation of the default eSLAM configuration."""
    accelerator = EslamAccelerator()
    report = accelerator.resource_report()
    totals = report.totals()
    return {
        "per_module": report.as_rows(),
        "totals": {
            "LUT": totals.luts,
            "FF": totals.flip_flops,
            "DSP": totals.dsps,
            "BRAM": totals.bram36,
        },
        "utilization_percent": report.utilization_percent(),
        "paper": {
            "LUT": 56954,
            "FF": 67809,
            "DSP": 111,
            "BRAM": 78,
            "LUT_percent": 26.0,
            "FF_percent": 15.5,
            "DSP_percent": 12.3,
            "BRAM_percent": 14.3,
        },
        "fits_xc7z045": report.fits(),
    }


# ---------------------------------------------------------------------------
# Table 2: runtime breakdown   /   Table 3: frame rate & energy
# ---------------------------------------------------------------------------
def run_table2_runtime(comparison: Optional[PlatformComparison] = None) -> Dict[str, object]:
    """Per-stage runtime breakdown on eSLAM / ARM / Intel i7."""
    comparison = comparison or PlatformComparison(NOMINAL_WORKLOAD)
    return {
        "rows": comparison.runtime_table(),
        "stage_speedups": comparison.stage_speedups(),
        "paper": {
            "eSLAM": {"feature_extraction": 9.1, "feature_matching": 4.0},
            "ARM Cortex-A9": {"feature_extraction": 291.6, "feature_matching": 246.2},
            "Intel i7-4700MQ": {"feature_extraction": 32.5, "feature_matching": 19.7},
        },
    }


def run_table3_energy(comparison: Optional[PlatformComparison] = None) -> Dict[str, object]:
    """Frame rate, power and energy-per-frame comparison."""
    comparison = comparison or PlatformComparison(NOMINAL_WORKLOAD)
    return {
        "rows": comparison.energy_table(),
        "speedups": comparison.speedups(),
        "energy_improvements": comparison.energy_improvements(),
        "paper": {
            "runtime_ms": {
                "normal": {"ARM Cortex-A9": 555.7, "Intel i7-4700MQ": 53.6, "eSLAM": 17.9},
                "key": {"ARM Cortex-A9": 565.6, "Intel i7-4700MQ": 54.8, "eSLAM": 31.8},
            },
            "frame_rate_fps": {
                "normal": {"ARM Cortex-A9": 1.8, "Intel i7-4700MQ": 18.66, "eSLAM": 55.87},
                "key": {"ARM Cortex-A9": 1.77, "Intel i7-4700MQ": 18.25, "eSLAM": 31.45},
            },
            "power_w": {"ARM Cortex-A9": 1.574, "Intel i7-4700MQ": 47.0, "eSLAM": 1.936},
            "energy_per_frame_mj": {
                "normal": {"ARM Cortex-A9": 875.0, "Intel i7-4700MQ": 2519.0, "eSLAM": 35.0},
                "key": {"ARM Cortex-A9": 890.0, "Intel i7-4700MQ": 2575.0, "eSLAM": 62.0},
            },
        },
    }


# ---------------------------------------------------------------------------
# Figure 8 / Figure 9: trajectory accuracy
# ---------------------------------------------------------------------------
@dataclass
class AccuracyRow:
    """One bar pair of Figure 8: per-sequence trajectory error for each descriptor."""

    sequence: str
    rs_brief_error_cm: float
    original_orb_error_cm: float

    @property
    def relative_difference(self) -> float:
        """(RS-BRIEF - original) / original, the quantity Figure 8 compares."""
        if self.original_orb_error_cm == 0:
            return 0.0
        return (
            self.rs_brief_error_cm - self.original_orb_error_cm
        ) / self.original_orb_error_cm


def _accuracy_slam_config(
    image_width: int, image_height: int, use_rs_brief: bool
) -> SlamConfig:
    """SLAM configuration used by the accuracy experiments."""
    return SlamConfig(
        extractor=ExtractorConfig(
            image_width=image_width,
            image_height=image_height,
            pyramid=PyramidConfig(num_levels=2),
            max_features=400,
            use_rs_brief=use_rs_brief,
        ),
        tracker=TrackerConfig(ransac_iterations=64, pose_iterations=10),
    )


def run_sequence_accuracy(
    sequence_name: str,
    use_rs_brief: bool,
    num_frames: int = 12,
    image_width: int = 320,
    image_height: int = 240,
) -> float:
    """Run SLAM on one synthetic sequence; return the mean ATE in centimetres."""
    spec = SequenceSpec(
        name=sequence_name,
        num_frames=num_frames,
        image_width=image_width,
        image_height=image_height,
    )
    sequence = make_sequence(spec)
    config = _accuracy_slam_config(image_width, image_height, use_rs_brief)
    result = SlamSystem(config).run(sequence)
    return result.ate().mean_cm


def run_fig8_accuracy(
    num_frames: int = 12,
    image_width: int = 320,
    image_height: int = 240,
    sequences: Optional[List[str]] = None,
) -> List[AccuracyRow]:
    """RS-BRIEF vs original ORB trajectory error on the five sequences (Figure 8)."""
    names = sequences or ["fr1/xyz", "fr2/xyz", "fr1/desk", "fr1/room", "fr2/rpy"]
    rows: List[AccuracyRow] = []
    for name in names:
        rs_error = run_sequence_accuracy(
            name, True, num_frames=num_frames, image_width=image_width, image_height=image_height
        )
        orb_error = run_sequence_accuracy(
            name, False, num_frames=num_frames, image_width=image_width, image_height=image_height
        )
        rows.append(
            AccuracyRow(
                sequence=name,
                rs_brief_error_cm=rs_error,
                original_orb_error_cm=orb_error,
            )
        )
    return rows


def run_fig9_trajectory(
    num_frames: int = 16, image_width: int = 320, image_height: int = 240
) -> Dict[str, object]:
    """Estimated vs ground-truth trajectory on the desk sequence (Figure 9)."""
    spec = SequenceSpec(
        name="fr1/desk",
        num_frames=num_frames,
        image_width=image_width,
        image_height=image_height,
    )
    sequence = make_sequence(spec)
    outputs: Dict[str, object] = {}
    for label, use_rs_brief in (("rs_brief", True), ("original_orb", False)):
        config = _accuracy_slam_config(image_width, image_height, use_rs_brief)
        result = SlamSystem(config).run(sequence)
        ate = result.ate()
        outputs[label] = {
            "ate_mean_cm": ate.mean_cm,
            "ate_rmse_cm": ate.rmse_cm,
            "estimated_xyz": ate.aligned_estimate.tolist(),
            "ground_truth_xyz": ate.ground_truth.tolist(),
        }
    return outputs


# ---------------------------------------------------------------------------
# Section 3.1 / 4.4: rescheduling and pyramid ablations
# ---------------------------------------------------------------------------
def run_rescheduling_ablation(image: Optional[GrayImage] = None) -> Dict[str, object]:
    """Latency and memory of the rescheduled vs original extractor workflow."""
    from ..image import random_blocks

    image = image or random_blocks(480, 640, block=12, seed=3)
    results: Dict[str, object] = {}
    for label, rescheduled in (("rescheduled", True), ("original", False)):
        config = ExtractorConfig(
            image_width=image.width,
            image_height=image.height,
            rescheduled_workflow=rescheduled,
        )
        accelerator = EslamAccelerator(extractor_config=config)
        report = accelerator.extractor.latency_from_profile(
            image, keypoints_after_nms=2000, descriptors_computed=2000
        )
        results[label] = {
            "latency_ms": report.latency_ms,
            "cycles": report.total_cycles,
            "on_chip_bytes": accelerator.extractor.on_chip_buffer_bytes(
                rescheduled, image_height=image.height
            ),
        }
    rescheduled_ms = results["rescheduled"]["latency_ms"]  # type: ignore[index]
    original_ms = results["original"]["latency_ms"]  # type: ignore[index]
    results["latency_reduction_percent"] = 100.0 * (original_ms - rescheduled_ms) / original_ms
    return results


def run_pyramid_ablation() -> Dict[str, object]:
    """Pixel-count scaling of the 4-layer pyramid vs a 2-layer design (Section 4.4)."""
    from ..image import pyramid_pixel_ratio

    ratio = pyramid_pixel_ratio(4, 2, scale=1.2)
    return {
        "pixel_ratio_4_vs_2_layers": ratio,
        "extra_pixels_percent": 100.0 * (ratio - 1.0),
        "paper_extra_pixels_percent": 48.0,
    }
