"""Experiment runners shared by the benchmark harness and EXPERIMENTS.md.

Each function reproduces one table or figure of the paper and returns plain
data structures (lists of row dictionaries / dataclasses) so they can be
printed by :mod:`repro.analysis.tables`, asserted on by the benchmark suite
and summarised in EXPERIMENTS.md.  Heavy experiments (the Figure 8 accuracy
sweep) accept size parameters so the benchmark suite can run them at reduced
resolution while the example scripts run them at full scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..config import (
    ExtractorConfig,
    PyramidConfig,
    SlamConfig,
    TrackerConfig,
)
from ..dataset import SequenceSpec, make_sequence
from ..errors import ReproError
from ..features import OrbExtractor
from ..hw import EslamAccelerator
from ..image import GrayImage
from ..platforms import NOMINAL_WORKLOAD, PlatformComparison
from ..slam import SlamSystem


# ---------------------------------------------------------------------------
# Table 1: resource utilisation
# ---------------------------------------------------------------------------
def run_table1_resources() -> Dict[str, object]:
    """FPGA resource utilisation of the default eSLAM configuration."""
    accelerator = EslamAccelerator()
    report = accelerator.resource_report()
    totals = report.totals()
    return {
        "per_module": report.as_rows(),
        "totals": {
            "LUT": totals.luts,
            "FF": totals.flip_flops,
            "DSP": totals.dsps,
            "BRAM": totals.bram36,
        },
        "utilization_percent": report.utilization_percent(),
        "paper": {
            "LUT": 56954,
            "FF": 67809,
            "DSP": 111,
            "BRAM": 78,
            "LUT_percent": 26.0,
            "FF_percent": 15.5,
            "DSP_percent": 12.3,
            "BRAM_percent": 14.3,
        },
        "fits_xc7z045": report.fits(),
    }


# ---------------------------------------------------------------------------
# Table 2: runtime breakdown   /   Table 3: frame rate & energy
# ---------------------------------------------------------------------------
def run_table2_runtime(comparison: Optional[PlatformComparison] = None) -> Dict[str, object]:
    """Per-stage runtime breakdown on eSLAM / ARM / Intel i7."""
    comparison = comparison or PlatformComparison(NOMINAL_WORKLOAD)
    return {
        "rows": comparison.runtime_table(),
        "stage_speedups": comparison.stage_speedups(),
        "paper": {
            "eSLAM": {"feature_extraction": 9.1, "feature_matching": 4.0},
            "ARM Cortex-A9": {"feature_extraction": 291.6, "feature_matching": 246.2},
            "Intel i7-4700MQ": {"feature_extraction": 32.5, "feature_matching": 19.7},
        },
    }


def run_table3_energy(comparison: Optional[PlatformComparison] = None) -> Dict[str, object]:
    """Frame rate, power and energy-per-frame comparison."""
    comparison = comparison or PlatformComparison(NOMINAL_WORKLOAD)
    return {
        "rows": comparison.energy_table(),
        "speedups": comparison.speedups(),
        "energy_improvements": comparison.energy_improvements(),
        "paper": {
            "runtime_ms": {
                "normal": {"ARM Cortex-A9": 555.7, "Intel i7-4700MQ": 53.6, "eSLAM": 17.9},
                "key": {"ARM Cortex-A9": 565.6, "Intel i7-4700MQ": 54.8, "eSLAM": 31.8},
            },
            "frame_rate_fps": {
                "normal": {"ARM Cortex-A9": 1.8, "Intel i7-4700MQ": 18.66, "eSLAM": 55.87},
                "key": {"ARM Cortex-A9": 1.77, "Intel i7-4700MQ": 18.25, "eSLAM": 31.45},
            },
            "power_w": {"ARM Cortex-A9": 1.574, "Intel i7-4700MQ": 47.0, "eSLAM": 1.936},
            "energy_per_frame_mj": {
                "normal": {"ARM Cortex-A9": 875.0, "Intel i7-4700MQ": 2519.0, "eSLAM": 35.0},
                "key": {"ARM Cortex-A9": 890.0, "Intel i7-4700MQ": 2575.0, "eSLAM": 62.0},
            },
        },
    }


# ---------------------------------------------------------------------------
# Figure 8 / Figure 9: trajectory accuracy
# ---------------------------------------------------------------------------
@dataclass
class AccuracyRow:
    """One bar pair of Figure 8: per-sequence trajectory error for each descriptor."""

    sequence: str
    rs_brief_error_cm: float
    original_orb_error_cm: float

    @property
    def relative_difference(self) -> float:
        """(RS-BRIEF - original) / original, the quantity Figure 8 compares."""
        if self.original_orb_error_cm == 0:
            return 0.0
        return (
            self.rs_brief_error_cm - self.original_orb_error_cm
        ) / self.original_orb_error_cm


def _accuracy_slam_config(
    image_width: int, image_height: int, use_rs_brief: bool
) -> SlamConfig:
    """SLAM configuration used by the accuracy experiments."""
    return SlamConfig(
        extractor=ExtractorConfig(
            image_width=image_width,
            image_height=image_height,
            pyramid=PyramidConfig(num_levels=2),
            max_features=400,
            use_rs_brief=use_rs_brief,
        ),
        tracker=TrackerConfig(ransac_iterations=64, pose_iterations=10),
    )


def run_sequence_accuracy(
    sequence_name: str,
    use_rs_brief: bool,
    num_frames: int = 12,
    image_width: int = 320,
    image_height: int = 240,
) -> float:
    """Run SLAM on one synthetic sequence; return the mean ATE in centimetres."""
    spec = SequenceSpec(
        name=sequence_name,
        num_frames=num_frames,
        image_width=image_width,
        image_height=image_height,
    )
    sequence = make_sequence(spec)
    config = _accuracy_slam_config(image_width, image_height, use_rs_brief)
    result = SlamSystem(config).run(sequence)
    return result.ate().mean_cm


def run_fig8_accuracy(
    num_frames: int = 12,
    image_width: int = 320,
    image_height: int = 240,
    sequences: Optional[List[str]] = None,
) -> List[AccuracyRow]:
    """RS-BRIEF vs original ORB trajectory error on the five sequences (Figure 8).

    Uses one :class:`BatchRunner` per descriptor mode so each compute engine
    (and its pattern tables) is built once and reused across all sequences.
    """
    names = sequences or ["fr1/xyz", "fr2/xyz", "fr1/desk", "fr1/room", "fr2/rpy"]
    specs = [
        SequenceSpec(
            name=name,
            num_frames=num_frames,
            image_width=image_width,
            image_height=image_height,
        )
        for name in names
    ]
    runners = {
        label: BatchRunner(config=_accuracy_slam_config(image_width, image_height, rs))
        for label, rs in (("rs_brief", True), ("original_orb", False))
    }
    results = {
        label: runner.run_all(specs, label=label) for label, runner in runners.items()
    }
    return [
        AccuracyRow(
            sequence=name,
            rs_brief_error_cm=results["rs_brief"][index].ate_mean_cm,
            original_orb_error_cm=results["original_orb"][index].ate_mean_cm,
        )
        for index, name in enumerate(names)
    ]


def run_fig9_trajectory(
    num_frames: int = 16, image_width: int = 320, image_height: int = 240
) -> Dict[str, object]:
    """Estimated vs ground-truth trajectory on the desk sequence (Figure 9)."""
    spec = SequenceSpec(
        name="fr1/desk",
        num_frames=num_frames,
        image_width=image_width,
        image_height=image_height,
    )
    sequence = make_sequence(spec)
    outputs: Dict[str, object] = {}
    for label, use_rs_brief in (("rs_brief", True), ("original_orb", False)):
        config = _accuracy_slam_config(image_width, image_height, use_rs_brief)
        result = SlamSystem(config).run(sequence)
        ate = result.ate()
        outputs[label] = {
            "ate_mean_cm": ate.mean_cm,
            "ate_rmse_cm": ate.rmse_cm,
            "estimated_xyz": ate.aligned_estimate.tolist(),
            "ground_truth_xyz": ate.ground_truth.tolist(),
        }
    return outputs


# ---------------------------------------------------------------------------
# Batched multi-sequence driver (one compute engine, many runs)
# ---------------------------------------------------------------------------
@dataclass
class BatchRunRecord:
    """Summary of one sequence run executed by :class:`BatchRunner`."""

    sequence: str
    tracker_label: str
    num_frames: int
    ate_mean_cm: float
    ate_rmse_cm: float
    tracking_success_ratio: float
    features_per_frame: float
    descriptors_computed: float

    def as_row(self) -> Dict[str, object]:
        """Row-dict form for :func:`repro.analysis.tables.format_table`."""
        return {
            "sequence": self.sequence,
            "tracker": self.tracker_label,
            "frames": self.num_frames,
            "ate_mean_cm": self.ate_mean_cm,
            "ate_rmse_cm": self.ate_rmse_cm,
            "success": self.tracking_success_ratio,
            "features/frame": self.features_per_frame,
        }


def _check_spec_resolution(config: SlamConfig, spec: SequenceSpec) -> None:
    """Reject specs whose frames cannot be served by the configured engine."""
    if (spec.image_width, spec.image_height) != (
        config.extractor.image_width,
        config.extractor.image_height,
    ):
        raise ReproError(
            f"sequence {spec.name!r} resolution {spec.image_width}x{spec.image_height} "
            "does not match the shared extractor configuration"
        )


def _execute_spec(
    config: SlamConfig,
    spec: SequenceSpec,
    tracker: Optional[TrackerConfig],
    label: str,
    max_frames: Optional[int],
    extractor: Optional[OrbExtractor] = None,
    frame_server=None,
) -> BatchRunRecord:
    """Run one sequence and summarise it as a :class:`BatchRunRecord`.

    Module-level so worker *processes* can run it: when ``extractor`` is
    omitted, the :class:`SlamSystem` builds its own engine from ``config``
    (each shard of :meth:`BatchRunner.run_all_multiprocess` owns one engine,
    exactly like a cluster worker).
    """
    _check_spec_resolution(config, spec)
    run_config = config if tracker is None else replace(config, tracker=tracker)
    sequence = make_sequence(spec)
    result = SlamSystem(run_config, extractor=extractor).run(
        sequence, max_frames=max_frames, frame_server=frame_server
    )
    ate = result.ate()
    workload = result.mean_workload()
    return BatchRunRecord(
        sequence=spec.name,
        tracker_label=label,
        num_frames=result.num_frames,
        ate_mean_cm=ate.mean_cm,
        ate_rmse_cm=ate.rmse_cm,
        tracking_success_ratio=result.tracking_success_ratio,
        features_per_frame=workload.get("features_retained", 0.0),
        descriptors_computed=workload.get("descriptors_computed", 0.0),
    )


@dataclass
class BatchRunner:
    """Run many sequences / tracker configurations through ONE compute engine.

    The expensive part of standing up a SLAM run is the extractor: descriptor
    pattern tables, rotation gather tables and orientation grids are rebuilt
    per :class:`OrbExtractor`.  ``BatchRunner`` builds the extractor (and its
    keypoint compute backend, see :mod:`repro.backends`) once and shares it
    across every accuracy sweep, which is how the Figure-8 style experiments
    amortise setup over five sequences x two descriptor modes.  Tracker-side
    settings may vary per run; the extractor configuration is fixed for the
    lifetime of the runner (a different extractor config needs a new engine).

    :meth:`run_all_multiprocess` is the exception to the one-shared-engine
    rule: it shards whole sequences across worker *processes*, each building
    its own identical engine, so sweeps scale past the GIL (see
    ``docs/serving.md``).

    ``pyramid_cache`` optionally injects an attached
    :class:`repro.pyramid.SharedPyramidCache` into the engine: N runners
    replaying the same sequence (the N-engine comparison pattern) then share
    each frame's pyramid through one cache — the stable per-frame ids
    emitted by :meth:`repro.slam.SlamSystem.run` make every runner attach
    to the same cached entry instead of building its own.
    """

    config: SlamConfig = field(default_factory=SlamConfig)
    max_frames: Optional[int] = None
    records: List[BatchRunRecord] = field(default_factory=list)
    pyramid_cache: Optional[object] = None

    def __post_init__(self) -> None:
        self.extractor = OrbExtractor(
            self.config.extractor, pyramid_cache=self.pyramid_cache
        )

    def _build_record(
        self,
        spec: SequenceSpec,
        tracker: Optional[TrackerConfig],
        label: str,
        frame_server=None,
    ) -> BatchRunRecord:
        """Run one sequence through the shared engine; no record bookkeeping."""
        return _execute_spec(
            self.config,
            spec,
            tracker,
            label,
            self.max_frames,
            extractor=self.extractor,
            frame_server=frame_server,
        )

    def run_sequence(
        self,
        spec: SequenceSpec,
        tracker: Optional[TrackerConfig] = None,
        label: str = "default",
        frame_server=None,
    ) -> BatchRunRecord:
        """Run SLAM over one synthetic sequence with the shared engine.

        ``frame_server`` optionally pipelines per-frame extraction through a
        :class:`repro.serving.FrameServer` (many frames in flight, identical
        results).
        """
        record = self._build_record(spec, tracker, label, frame_server=frame_server)
        self.records.append(record)
        return record

    def run_all(
        self,
        specs: Sequence[SequenceSpec],
        tracker: Optional[TrackerConfig] = None,
        label: str = "default",
        frame_server=None,
    ) -> List[BatchRunRecord]:
        """Run every spec through the shared engine; returns the new records."""
        return [
            self.run_sequence(spec, tracker=tracker, label=label, frame_server=frame_server)
            for spec in specs
        ]

    def run_all_parallel(
        self,
        specs: Sequence[SequenceSpec],
        tracker: Optional[TrackerConfig] = None,
        label: str = "default",
        max_workers: Optional[int] = None,
    ) -> List[BatchRunRecord]:
        """Run the specs concurrently, every sequence on the ONE shared engine.

        Sequences are independent SLAM runs, the extractor is stateless
        across frames (thread-local scratch only), and numpy releases the
        GIL inside its kernels, so a small thread pool overlaps the
        per-sequence work.  Records are appended in spec order, so the
        result — like each individual run — is identical to the sequential
        sweep.
        """
        from concurrent.futures import ThreadPoolExecutor

        if max_workers is not None and max_workers <= 0:
            raise ReproError("max_workers must be positive")
        workers = max_workers if max_workers is not None else min(4, max(1, len(specs)))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(self._build_record, spec, tracker, label) for spec in specs
            ]
            records, first_error = [], None
            for future in futures:
                try:
                    records.append(future.result())
                except Exception as error:  # keep completed runs, like run_all
                    if first_error is None:
                        first_error = error
        self.records.extend(records)
        if first_error is not None:
            raise first_error
        return records

    def run_all_multiprocess(
        self,
        specs: Sequence[SequenceSpec],
        tracker: Optional[TrackerConfig] = None,
        label: str = "default",
        num_workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> List[BatchRunRecord]:
        """Shard the sweep across worker processes (one engine per worker).

        Each spec runs as one task in a process pool: the worker builds its
        own engine from this runner's configuration and executes the whole
        sequence, so independent sweeps scale across host cores instead of
        sharing one GIL (``run_all_parallel`` only overlaps the numpy
        kernels).  Records come back in spec order and — like every
        execution mode of this runner — are identical to the sequential
        sweep, because each run is a pure function of (config, spec).
        """
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        from ..cluster.context import get_mp_context

        if num_workers is not None and num_workers <= 0:
            raise ReproError("num_workers must be positive")
        for spec in specs:  # fail fast, before paying any process spin-up
            _check_spec_resolution(self.config, spec)
        if not specs:
            return []
        workers = (
            num_workers
            if num_workers is not None
            else min(len(specs), multiprocessing.cpu_count())
        )
        context = get_mp_context(start_method)
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = [
                pool.submit(
                    _execute_spec, self.config, spec, tracker, label, self.max_frames
                )
                for spec in specs
            ]
            records, first_error = [], None
            for future in futures:
                try:
                    records.append(future.result())
                except Exception as error:  # keep completed runs, like run_all
                    if first_error is None:
                        first_error = error
        self.records.extend(records)
        if first_error is not None:
            raise first_error
        return records

    def summary(self) -> Dict[str, object]:
        """Aggregate view over all runs performed so far."""
        if not self.records:
            return {"runs": 0, "rows": []}
        return {
            "runs": len(self.records),
            "mean_ate_cm": sum(r.ate_mean_cm for r in self.records) / len(self.records),
            "total_frames": sum(r.num_frames for r in self.records),
            "backend": self.extractor.backend.name,
            "rows": [record.as_row() for record in self.records],
        }


# ---------------------------------------------------------------------------
# Section 3.1 / 4.4: rescheduling and pyramid ablations
# ---------------------------------------------------------------------------
def run_rescheduling_ablation(image: Optional[GrayImage] = None) -> Dict[str, object]:
    """Latency and memory of the rescheduled vs original extractor workflow."""
    from ..image import random_blocks

    image = image or random_blocks(480, 640, block=12, seed=3)
    results: Dict[str, object] = {}
    for label, rescheduled in (("rescheduled", True), ("original", False)):
        config = ExtractorConfig(
            image_width=image.width,
            image_height=image.height,
            rescheduled_workflow=rescheduled,
        )
        accelerator = EslamAccelerator(extractor_config=config)
        report = accelerator.extractor.latency_from_profile(
            image, keypoints_after_nms=2000, descriptors_computed=2000
        )
        results[label] = {
            "latency_ms": report.latency_ms,
            "cycles": report.total_cycles,
            "on_chip_bytes": accelerator.extractor.on_chip_buffer_bytes(
                rescheduled, image_height=image.height
            ),
        }
    rescheduled_ms = results["rescheduled"]["latency_ms"]  # type: ignore[index]
    original_ms = results["original"]["latency_ms"]  # type: ignore[index]
    results["latency_reduction_percent"] = 100.0 * (original_ms - rescheduled_ms) / original_ms
    return results


def run_pyramid_ablation() -> Dict[str, object]:
    """Pixel-count scaling of the 4-layer pyramid vs a 2-layer design (Section 4.4)."""
    from ..image import pyramid_pixel_ratio

    ratio = pyramid_pixel_ratio(4, 2, scale=1.2)
    return {
        "pixel_ratio_4_vs_2_layers": ratio,
        "extra_pixels_percent": 100.0 * (ratio - 1.0),
        "paper_extra_pixels_percent": 48.0,
    }
