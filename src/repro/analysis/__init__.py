"""Experiment harness: table formatting and per-table/figure runners."""

from .tables import format_comparison, format_table
from .report import ReportOptions, build_report, write_report
from .experiments import (
    AccuracyRow,
    BatchRunRecord,
    BatchRunner,
    run_fig8_accuracy,
    run_fig9_trajectory,
    run_pyramid_ablation,
    run_rescheduling_ablation,
    run_sequence_accuracy,
    run_table1_resources,
    run_table2_runtime,
    run_table3_energy,
)
from .hwexact import (
    compare_float_vs_fixed_extraction,
    run_hwexact_parity,
    run_quantization_divergence,
)

__all__ = [
    "format_table",
    "format_comparison",
    "ReportOptions",
    "build_report",
    "write_report",
    "AccuracyRow",
    "BatchRunRecord",
    "BatchRunner",
    "run_table1_resources",
    "run_table2_runtime",
    "run_table3_energy",
    "run_fig8_accuracy",
    "run_fig9_trajectory",
    "run_sequence_accuracy",
    "run_rescheduling_ablation",
    "run_pyramid_ablation",
    "compare_float_vs_fixed_extraction",
    "run_hwexact_parity",
    "run_quantization_divergence",
]
