"""Reproduction report generation.

Builds a Markdown report of the cheap (model-level) experiments -- Tables 1-3,
the Figure-7 pipeline, the rescheduling and pyramid ablations -- by running
the same experiment runners the benchmark harness uses.  The accuracy
experiments (Figures 8/9) run full SLAM and are therefore optional and sized
by the caller.

This powers ``python -m repro.analysis.report``, which writes
``reproduction_report.md`` so a user can regenerate a paper-vs-measured
summary without reading benchmark output.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from .experiments import (
    run_fig8_accuracy,
    run_pyramid_ablation,
    run_rescheduling_ablation,
    run_table1_resources,
    run_table2_runtime,
    run_table3_energy,
)
from .tables import format_table


@dataclass
class ReportOptions:
    """What to include in the generated report."""

    include_accuracy: bool = False
    accuracy_frames: int = 10
    accuracy_width: int = 320
    accuracy_height: int = 240


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n{body}\n"


def _code_block(text: str) -> str:
    return f"```\n{text}\n```"


def build_report(options: Optional[ReportOptions] = None) -> str:
    """Return the full Markdown report as a string."""
    options = options or ReportOptions()
    sections: List[str] = ["# eSLAM reproduction report\n"]

    # -- Table 1 ------------------------------------------------------------------
    table1 = run_table1_resources()
    body = _code_block(format_table(table1["per_module"]))
    body += (
        f"\n\nTotals: {table1['totals']} -- paper reports "
        f"{ {k: v for k, v in table1['paper'].items() if not k.endswith('_percent')} }."
    )
    sections.append(_section("Table 1 -- FPGA resource utilisation", body))

    # -- Table 2 ------------------------------------------------------------------
    table2 = run_table2_runtime()
    body = _code_block(format_table(table2["rows"]))
    speedups = table2["stage_speedups"]
    body += (
        "\n\nStage speedups of eSLAM: "
        f"FE {speedups['ARM Cortex-A9']['feature_extraction']:.1f}x vs ARM "
        f"(paper 32x), {speedups['Intel i7-4700MQ']['feature_extraction']:.1f}x vs i7 (paper 3.6x); "
        f"FM {speedups['ARM Cortex-A9']['feature_matching']:.1f}x vs ARM (paper 61.6x), "
        f"{speedups['Intel i7-4700MQ']['feature_matching']:.1f}x vs i7 (paper 4.9x)."
    )
    sections.append(_section("Table 2 -- per-stage runtime (ms)", body))

    # -- Table 3 ------------------------------------------------------------------
    table3 = run_table3_energy()
    body = _code_block(format_table(table3["rows"]))
    body += (
        "\n\nFrame-rate speedups: "
        f"{table3['speedups']['ARM Cortex-A9']['normal']:.1f}x / "
        f"{table3['speedups']['ARM Cortex-A9']['key']:.1f}x vs ARM (paper 31x / 17.8x), "
        f"{table3['speedups']['Intel i7-4700MQ']['normal']:.1f}x / "
        f"{table3['speedups']['Intel i7-4700MQ']['key']:.1f}x vs i7 (paper 3x / 1.7x).  "
        "Energy improvements: "
        f"{table3['energy_improvements']['ARM Cortex-A9']['normal']:.1f}x / "
        f"{table3['energy_improvements']['ARM Cortex-A9']['key']:.1f}x vs ARM (paper ~25x / 14x), "
        f"{table3['energy_improvements']['Intel i7-4700MQ']['normal']:.1f}x / "
        f"{table3['energy_improvements']['Intel i7-4700MQ']['key']:.1f}x vs i7 (paper ~71x / 41x)."
    )
    sections.append(_section("Table 3 -- frame rate, power and energy", body))

    # -- ablations -----------------------------------------------------------------
    rescheduling = run_rescheduling_ablation()
    pyramid = run_pyramid_ablation()
    body = (
        f"Rescheduled workflow: {rescheduling['rescheduled']['latency_ms']:.2f} ms, "
        f"{rescheduling['rescheduled']['on_chip_bytes'] / 1024:.0f} KiB on-chip buffering; "
        f"original workflow: {rescheduling['original']['latency_ms']:.2f} ms, "
        f"{rescheduling['original']['on_chip_bytes'] / 1024:.0f} KiB "
        f"({rescheduling['latency_reduction_percent']:.0f}% latency reduction).\n\n"
        f"4-layer vs 2-layer pyramid: {pyramid['extra_pixels_percent']:.1f}% more pixels "
        f"(paper: ~{pyramid['paper_extra_pixels_percent']:.0f}%)."
    )
    sections.append(_section("Design-choice ablations (Sections 3.1 / 4.4)", body))

    # -- accuracy (optional, slow) ----------------------------------------------------
    if options.include_accuracy:
        rows = run_fig8_accuracy(
            num_frames=options.accuracy_frames,
            image_width=options.accuracy_width,
            image_height=options.accuracy_height,
        )
        table = [
            {
                "sequence": row.sequence,
                "RS-BRIEF (cm)": row.rs_brief_error_cm,
                "original ORB (cm)": row.original_orb_error_cm,
            }
            for row in rows
        ]
        mean_rs = sum(r.rs_brief_error_cm for r in rows) / len(rows)
        mean_orb = sum(r.original_orb_error_cm for r in rows) / len(rows)
        body = _code_block(format_table(table))
        body += (
            f"\n\nMeans: RS-BRIEF {mean_rs:.2f} cm vs original ORB {mean_orb:.2f} cm on the "
            "synthetic sequences (paper: 4.3 cm vs 4.16 cm on real TUM data; the reproduced "
            "claim is that the two are comparable)."
        )
        sections.append(_section("Figure 8 -- trajectory accuracy", body))

    sections.append(
        "All FPGA and CPU figures above are model outputs (see DESIGN.md for the "
        "substitutions); accuracy figures, when included, are measured on synthetic scenes.\n"
    )
    return "\n".join(sections)


def write_report(path: str | Path, options: Optional[ReportOptions] = None) -> Path:
    """Write the report to ``path`` and return the path."""
    output = Path(path)
    output.write_text(build_report(options))
    return output


def main() -> None:  # pragma: no cover - thin CLI wrapper
    import argparse

    parser = argparse.ArgumentParser(description="Generate the eSLAM reproduction report")
    parser.add_argument("--output", default="reproduction_report.md")
    parser.add_argument(
        "--with-accuracy",
        action="store_true",
        help="also run the (slow) Figure-8 accuracy sweep",
    )
    args = parser.parse_args()
    options = ReportOptions(include_accuracy=args.with_accuracy)
    path = write_report(args.output, options)
    print(f"report written to {path}")


if __name__ == "__main__":  # pragma: no cover
    main()
